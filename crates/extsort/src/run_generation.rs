//! The run-generation interface shared by every algorithm.
//!
//! A run-generation algorithm consumes the input stream and produces a set
//! of sorted runs on a storage device (§2.1.1). Classic replacement
//! selection and Load-Sort-Store write plain forward runs; two-way
//! replacement selection additionally writes *reverse* runs in the
//! Appendix A format (streams whose records were produced in decreasing
//! order). [`RunHandle`] names either kind and [`RunCursor`] reads both back
//! in ascending order so the merge phase does not care which algorithm
//! produced a run.

use crate::error::Result;
use twrs_storage::{
    ReverseRunReader, ReverseRunWriter, RunReader, RunWriter, SortableRecord, SpillNamer,
    StorageDevice, StorageError,
};

/// Device bound required by run generation: the reverse-file writer needs to
/// create part files on demand, so the device must be cloneable and owned.
pub trait Device: StorageDevice + Clone + Send + 'static {}

impl<D> Device for D where D: StorageDevice + Clone + Send + 'static {}

/// A named run stored on a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunHandle {
    /// A forward run file written by [`RunWriter`]; records are stored in
    /// ascending order.
    Forward(String),
    /// A reverse run (Appendix A format) written by [`ReverseRunWriter`];
    /// records were produced in descending order but read back ascending.
    Reverse(String),
    /// A logical run made of several physical runs whose key ranges do not
    /// overlap and that follow each other in ascending order. 2WRS produces
    /// one `Chain` per run, holding its streams 4, 3, 2 and 1 in that order
    /// (§4.1: "the final output run is generated concatenating the contents
    /// of the four streams").
    Chain(Vec<RunHandle>),
}

impl RunHandle {
    /// The base file name of the run; for a [`RunHandle::Chain`] the name of
    /// its first component (or an empty string for an empty chain).
    pub fn name(&self) -> &str {
        match self {
            RunHandle::Forward(name) | RunHandle::Reverse(name) => name,
            RunHandle::Chain(parts) => parts.first().map(RunHandle::name).unwrap_or(""),
        }
    }

    /// Every physical file handle reachable from this handle, depth first.
    pub fn physical(&self) -> Vec<&RunHandle> {
        match self {
            RunHandle::Forward(_) | RunHandle::Reverse(_) => vec![self],
            RunHandle::Chain(parts) => parts.iter().flat_map(RunHandle::physical).collect(),
        }
    }
}

/// The outcome of a run-generation phase.
#[derive(Debug, Clone, Default)]
pub struct RunSet {
    /// The generated runs, in generation order.
    pub runs: Vec<RunHandle>,
    /// Total number of records distributed over the runs.
    pub records: u64,
}

impl RunSet {
    /// Number of runs generated.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Average run length in records (0 when no run was generated).
    pub fn average_run_length(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.records as f64 / self.runs.len() as f64
        }
    }

    /// Average run length relative to a memory budget of `memory_records`
    /// records — the metric of Table 5.13 ("run length / available
    /// memory").
    pub fn relative_run_length(&self, memory_records: usize) -> f64 {
        if memory_records == 0 {
            0.0
        } else {
            self.average_run_length() / memory_records as f64
        }
    }
}

/// A run-generation algorithm.
///
/// Implementations read the whole `input` iterator and write sorted runs to
/// `device`, naming them through `namer` so the caller can clean them up.
///
/// [`generate`](RunGenerator::generate) is generic over the record type, so
/// one generator value serves every [`SortableRecord`] — the concrete record
/// is chosen at the call site (usually inferred from the input iterator).
/// The memory budget is expressed in *records*, whatever their size.
pub trait RunGenerator {
    /// Short human-readable name used in reports ("RS", "2WRS", "LSS", …).
    fn label(&self) -> &'static str;

    /// Memory budget of the algorithm, in records. Reported so run lengths
    /// can be normalised.
    fn memory_records(&self) -> usize;

    /// Consumes `input` and produces a [`RunSet`] on `device`.
    fn generate<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        namer: &SpillNamer,
        input: &mut dyn Iterator<Item = R>,
    ) -> Result<RunSet>;
}

/// A run generator whose memory budget can be re-leased after construction.
///
/// The [`SortService`](crate::service::SortService) admission controller
/// shrinks or grows the budget a job asked for so that the sum of all
/// in-flight budgets never exceeds the service's global budget; this trait
/// is the hook it uses. Re-budgeting must preserve every other knob of the
/// generator (heuristics, buffer setup, seeds, …) — only the memory changes.
pub trait BudgetedGenerator: RunGenerator {
    /// Returns a copy of this generator with its memory budget replaced by
    /// `memory_records` (everything else unchanged).
    fn with_budget(&self, memory_records: usize) -> Self;
}

/// A unified ascending-order reader over either kind of run.
pub enum RunCursor<R: SortableRecord> {
    /// Cursor over a forward run file.
    Forward(RunReader<R>),
    /// Cursor over a reverse (Appendix A) run.
    Reverse(ReverseRunReader<R>),
    /// Cursor over a chain of runs read one after another.
    Chain {
        /// The component cursors, in ascending key-range order.
        parts: Vec<RunCursor<R>>,
        /// Index of the component currently being read.
        current: usize,
    },
}

impl<R: SortableRecord> RunCursor<R> {
    /// Opens the run named by `handle` on `device`.
    pub fn open(device: &dyn StorageDevice, handle: &RunHandle) -> Result<Self> {
        Ok(match handle {
            RunHandle::Forward(name) => RunCursor::Forward(RunReader::open(device, name)?),
            RunHandle::Reverse(name) => RunCursor::Reverse(ReverseRunReader::open(device, name)?),
            RunHandle::Chain(parts) => RunCursor::Chain {
                parts: parts
                    .iter()
                    .map(|p| RunCursor::open(device, p))
                    .collect::<Result<_>>()?,
                current: 0,
            },
        })
    }

    /// Total number of records in the run.
    pub fn len(&self) -> u64 {
        match self {
            RunCursor::Forward(r) => r.len(),
            RunCursor::Reverse(r) => r.len(),
            RunCursor::Chain { parts, .. } => parts.iter().map(RunCursor::len).sum(),
        }
    }

    /// `true` when the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the next record in ascending order, or `None` at the end.
    pub fn next_record(&mut self) -> Result<Option<R>> {
        match self {
            RunCursor::Forward(r) => Ok(r.next_record()?),
            RunCursor::Reverse(r) => Ok(r.next_record()?),
            RunCursor::Chain { parts, current } => loop {
                match parts.get_mut(*current) {
                    Some(part) => match part.next_record()? {
                        Some(record) => return Ok(Some(record)),
                        None => *current += 1,
                    },
                    None => return Ok(None),
                }
            },
        }
    }

    /// Reads the whole remaining run into a vector (mainly for tests).
    pub fn read_all(&mut self) -> Result<Vec<R>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Iterator over a [`RunReader`] that stops at the first read error and
/// parks it for the caller to inspect once iteration is over. This is how
/// fallible dataset scans feed the `&mut dyn Iterator` inputs of the
/// pipeline: a corrupt or truncated input surfaces as a [`StorageError`]
/// from the caller instead of a panic mid-sort.
pub(crate) struct FallibleRecords<'e, R: SortableRecord> {
    pub(crate) reader: RunReader<R>,
    pub(crate) error: &'e mut Option<StorageError>,
}

impl<R: SortableRecord> Iterator for FallibleRecords<'_, R> {
    type Item = R;

    fn next(&mut self) -> Option<R> {
        if self.error.is_some() {
            return None;
        }
        match self.reader.next_record() {
            Ok(record) => record,
            Err(e) => {
                *self.error = Some(e);
                None
            }
        }
    }
}

/// Shared `sort_file` plumbing of the sequential and parallel sorters:
/// opens the dataset `input` on `device`, feeds it to `sort` through a
/// [`FallibleRecords`] adapter, and — when the dataset turned out corrupt
/// or truncated — removes the partial `output` file (when the sort writes
/// one; stream and sink sorts pass `None`) and surfaces the read error
/// instead of the sort result.
///
/// The pipeline cannot abort mid-phase on a read error (the generators see
/// an ordinary end of stream), so the sort runs to completion on the
/// readable prefix before the error is reported; the valid-looking partial
/// output never survives, though. A successfully constructed `SortedStream`
/// over a truncated dataset is dropped here too, which removes its spill
/// files.
pub(crate) fn sort_dataset_file<D, R, T>(
    device: &D,
    input: &str,
    output: Option<&str>,
    sort: impl FnOnce(&mut FallibleRecords<'_, R>) -> Result<T>,
) -> Result<T>
where
    D: StorageDevice,
    R: SortableRecord,
{
    let reader = RunReader::<R>::open(device, input)?;
    let mut read_error = None;
    let mut iter = FallibleRecords {
        reader,
        error: &mut read_error,
    };
    let result = sort(&mut iter);
    drop(iter);
    match read_error {
        Some(error) => {
            // The sort ran to completion on the truncated prefix; do not
            // leave that valid-looking partial output behind.
            if let Some(output) = output {
                if device.exists(output) {
                    let _ = device.remove(output);
                }
            }
            Err(error.into())
        }
        None => result,
    }
}

/// Incrementally builds a forward run, opening the file lazily on the first
/// record so empty runs never touch the device. Shared by every
/// run-generation algorithm (including 2WRS in `twrs-core`).
pub struct ForwardRunBuilder<'a, D: Device, R: SortableRecord> {
    device: &'a D,
    namer: &'a SpillNamer,
    writer: Option<(RunWriter<R>, String)>,
}

impl<'a, D: Device, R: SortableRecord> ForwardRunBuilder<'a, D, R> {
    /// Creates a builder that will allocate run names through `namer`.
    pub fn new(device: &'a D, namer: &'a SpillNamer) -> Self {
        ForwardRunBuilder {
            device,
            namer,
            writer: None,
        }
    }

    /// Appends a record to the current run, opening it lazily.
    pub fn push(&mut self, record: &R) -> Result<()> {
        if self.writer.is_none() {
            let name = self.namer.next_name("run");
            let writer = RunWriter::create(self.device, &name)?;
            self.writer = Some((writer, name));
        }
        if let Some((writer, _)) = self.writer.as_mut() {
            writer.push(record)?;
        }
        Ok(())
    }

    /// Closes the current run (if any), appends its handle to `runs` and
    /// returns how many records it held.
    pub fn finish_run(&mut self, runs: &mut Vec<RunHandle>) -> Result<u64> {
        if let Some((writer, name)) = self.writer.take() {
            let records = writer.finish()?;
            if records > 0 {
                runs.push(RunHandle::Forward(name));
            }
            return Ok(records);
        }
        Ok(0)
    }
}

/// Incrementally builds a reverse (Appendix A) run for streams produced in
/// decreasing order, with the same lazy-open behaviour as
/// [`ForwardRunBuilder`]. Used by the decreasing streams of 2WRS.
pub struct ReverseRunBuilder<'a, D: Device, R: SortableRecord> {
    device: &'a D,
    namer: &'a SpillNamer,
    pages_per_file: u64,
    writer: Option<(ReverseRunWriter<R>, String)>,
}

impl<'a, D: Device, R: SortableRecord> ReverseRunBuilder<'a, D, R> {
    /// Creates a builder whose part files will have `pages_per_file` pages.
    pub fn new(device: &'a D, namer: &'a SpillNamer, pages_per_file: u64) -> Self {
        ReverseRunBuilder {
            device,
            namer,
            pages_per_file,
            writer: None,
        }
    }

    /// Appends the next (smaller or equal) record of the decreasing stream.
    pub fn push(&mut self, record: &R) -> Result<()> {
        if self.writer.is_none() {
            let name = self.namer.next_name("rev");
            let writer =
                ReverseRunWriter::with_pages_per_file(self.device, &name, self.pages_per_file)?;
            self.writer = Some((writer, name));
        }
        if let Some((writer, _)) = self.writer.as_mut() {
            writer.push(record)?;
        }
        Ok(())
    }

    /// Closes the current run (if any), appends its handle to `runs` and
    /// returns how many records it held.
    pub fn finish_run(&mut self, runs: &mut Vec<RunHandle>) -> Result<u64> {
        if let Some((writer, name)) = self.writer.take() {
            let records = writer.finish()?;
            if records > 0 {
                runs.push(RunHandle::Reverse(name));
            }
            return Ok(records);
        }
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twrs_storage::ModelId;
    use twrs_storage::SimDevice;

    #[test]
    fn run_set_metrics() {
        let set = RunSet {
            runs: vec![
                RunHandle::Forward("a".into()),
                RunHandle::Forward("b".into()),
            ],
            records: 400,
        };
        assert_eq!(set.num_runs(), 2);
        assert_eq!(set.average_run_length(), 200.0);
        assert_eq!(set.relative_run_length(100), 2.0);
    }

    #[test]
    fn empty_run_set_metrics() {
        let set = RunSet::default();
        assert_eq!(set.num_runs(), 0);
        assert_eq!(set.average_run_length(), 0.0);
        assert_eq!(set.relative_run_length(100), 0.0);
    }

    #[test]
    fn cursor_reads_forward_and_reverse_runs_identically() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("t");

        // Forward run with ascending records.
        let mut fwd = ForwardRunBuilder::new(&device, &namer);
        for k in 0..100u64 {
            fwd.push(&k).unwrap();
        }
        let mut runs = Vec::new();
        fwd.finish_run(&mut runs).unwrap();

        // Reverse run receiving the same records in descending order.
        let mut rev = ReverseRunBuilder::new(&device, &namer, 4);
        for k in (0..100u64).rev() {
            rev.push(&k).unwrap();
        }
        rev.finish_run(&mut runs).unwrap();

        assert_eq!(runs.len(), 2);
        let mut first = RunCursor::<u64>::open(&device, &runs[0]).unwrap();
        let mut second = RunCursor::<u64>::open(&device, &runs[1]).unwrap();
        assert_eq!(first.len(), 100);
        assert_eq!(second.len(), 100);
        assert_eq!(first.read_all().unwrap(), second.read_all().unwrap());
    }

    #[test]
    fn empty_builders_produce_no_runs() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("t");
        let mut fwd = ForwardRunBuilder::<_, u64>::new(&device, &namer);
        let mut runs = Vec::new();
        assert_eq!(fwd.finish_run(&mut runs).unwrap(), 0);
        let mut rev = ReverseRunBuilder::<_, u64>::new(&device, &namer, 4);
        assert_eq!(rev.finish_run(&mut runs).unwrap(), 0);
        assert!(runs.is_empty());
    }

    #[test]
    fn handles_expose_names() {
        assert_eq!(RunHandle::Forward("x".into()).name(), "x");
        assert_eq!(RunHandle::Reverse("y".into()).name(), "y");
    }
}
