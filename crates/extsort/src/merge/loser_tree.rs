//! Tournament (loser) tree for k-way merging.
//!
//! Selecting the smallest of `k` candidate records with a linear scan costs
//! `O(k)` per output record; a loser tree brings that down to `O(log k)` by
//! remembering, at every internal node, the loser of the comparison played
//! there, so only one root-to-leaf path has to be replayed when a source
//! produces its next record. This is the standard database implementation of
//! the k-way merge described in §2.1.2.

use std::cmp::Ordering;

/// A tournament tree over `k` sources.
///
/// The tree itself stores only source indices; the caller keeps the current
/// head record of every source in a slice of `Option<T>` (`None` marks an
/// exhausted source and compares greater than every record) and passes it to
/// every operation.
#[derive(Debug, Clone)]
pub struct LoserTree {
    /// `tree[0]` is the overall winner; `tree[1..k]` store the loser of the
    /// match played at that internal node.
    tree: Vec<usize>,
    k: usize,
}

impl LoserTree {
    /// Builds a tree over `values` (one entry per source).
    pub fn new<T: Ord>(values: &[Option<T>]) -> Self {
        let k = values.len().max(1);
        let mut tree = LoserTree {
            tree: vec![0; k],
            k,
        };
        tree.rebuild(values);
        tree
    }

    /// Number of sources the tree was built over.
    pub fn sources(&self) -> usize {
        self.k
    }

    /// The index of the source currently holding the smallest record.
    pub fn winner(&self) -> usize {
        self.tree[0]
    }

    /// Rebuilds the whole tree; `O(k)`.
    pub fn rebuild<T: Ord>(&mut self, values: &[Option<T>]) {
        let k = self.k;
        // winners[n] is the winner of the subtree rooted at node n, with
        // leaves living at positions k..2k.
        let mut winners = vec![usize::MAX; 2 * k];
        for i in 0..k {
            winners[k + i] = i;
        }
        for n in (1..k).rev() {
            let left = winners[2 * n];
            let right = winners[2 * n + 1];
            let (winner, loser) = if Self::beats(values, left, right) {
                (left, right)
            } else {
                (right, left)
            };
            winners[n] = winner;
            self.tree[n] = loser;
        }
        self.tree[0] = if k == 1 { 0 } else { winners[1] };
    }

    /// After the current winner's source produced a new head record (or ran
    /// out), replays its leaf-to-root path and returns the new winner.
    pub fn replay<T: Ord>(&mut self, values: &[Option<T>], source: usize) -> usize {
        let mut winner = source;
        let mut node = (self.k + source) / 2;
        while node > 0 {
            let contender = self.tree[node];
            if Self::beats(values, contender, winner) {
                self.tree[node] = winner;
                winner = contender;
            }
            node /= 2;
        }
        self.tree[0] = winner;
        winner
    }

    /// `true` when source `a` wins against source `b` (smaller record wins;
    /// exhausted sources always lose; ties break on the source index so the
    /// merge is stable with respect to run order).
    fn beats<T: Ord>(values: &[Option<T>], a: usize, b: usize) -> bool {
        if a == usize::MAX {
            return false;
        }
        if b == usize::MAX {
            return true;
        }
        match (&values[a], &values[b]) {
            (Some(x), Some(y)) => match x.cmp(y) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Merges the given sorted sequences using the loser tree directly.
    fn merge_with_tree(mut sources: Vec<Vec<u64>>) -> Vec<u64> {
        for s in &sources {
            assert!(s.windows(2).all(|w| w[0] <= w[1]));
        }
        let mut cursors: Vec<std::vec::IntoIter<u64>> =
            sources.drain(..).map(|v| v.into_iter()).collect();
        let mut heads: Vec<Option<u64>> = cursors.iter_mut().map(|c| c.next()).collect();
        let mut tree = LoserTree::new(&heads);
        let mut out = Vec::new();
        loop {
            let winner = tree.winner();
            match heads[winner].take() {
                Some(value) => {
                    out.push(value);
                    heads[winner] = cursors[winner].next();
                    tree.replay(&heads, winner);
                }
                None => break,
            }
        }
        out
    }

    #[test]
    fn merges_the_paper_example() {
        // Figure 2.1: three runs merged into one.
        let merged = merge_with_tree(vec![
            vec![2, 8, 12, 16],
            vec![3, 13, 14, 17],
            vec![1, 7, 9, 18],
        ]);
        assert_eq!(merged, vec![1, 2, 3, 7, 8, 9, 12, 13, 14, 16, 17, 18]);
    }

    #[test]
    fn single_source_passes_through() {
        let merged = merge_with_tree(vec![vec![1, 2, 3]]);
        assert_eq!(merged, vec![1, 2, 3]);
    }

    #[test]
    fn handles_empty_sources() {
        let merged = merge_with_tree(vec![vec![], vec![5, 6], vec![], vec![1, 9]]);
        assert_eq!(merged, vec![1, 5, 6, 9]);
    }

    #[test]
    fn handles_all_empty() {
        let merged = merge_with_tree(vec![vec![], vec![]]);
        assert!(merged.is_empty());
    }

    #[test]
    fn merges_many_sources_with_duplicates() {
        let sources: Vec<Vec<u64>> = (0..13)
            .map(|s| (0..50).map(|i| (i * 13 + s) % 97).collect::<Vec<u64>>())
            .map(|mut v| {
                v.sort_unstable();
                v
            })
            .collect();
        let mut expected: Vec<u64> = sources.iter().flatten().copied().collect();
        expected.sort_unstable();
        assert_eq!(merge_with_tree(sources), expected);
    }

    #[test]
    fn non_power_of_two_fan_in() {
        for k in 1..=9usize {
            let sources: Vec<Vec<u64>> = (0..k)
                .map(|s| ((s as u64)..100).step_by(k).collect())
                .collect();
            let mut expected: Vec<u64> = sources.iter().flatten().copied().collect();
            expected.sort_unstable();
            assert_eq!(merge_with_tree(sources), expected, "k = {k}");
        }
    }
}
