//! The merge phase of external mergesort (§2.1.2).
//!
//! Runs produced during run generation are combined into a single sorted
//! output. Two families of algorithms are provided:
//!
//! * [`kway`] — k-way merging with a tournament (loser) tree, a configurable
//!   fan-in and per-run read-ahead buffers. This is the merge used in every
//!   timing experiment of Chapter 6 (the fan-in analysis of §6.1.1 sweeps
//!   its fan-in parameter).
//! * [`polyphase`] — polyphase merge over `k + 1` tapes (§2.1.2,
//!   Table 2.1), kept for completeness of the historical context.
//!
//! [`loser_tree`] holds the tournament tree shared by both.

pub mod kway;
pub mod loser_tree;
pub mod polyphase;
