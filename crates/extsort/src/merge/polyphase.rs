//! Polyphase merge (§2.1.2, Table 2.1).
//!
//! Polyphase merge was designed for the tape era: with `k + 1` tapes, runs
//! are distributed unevenly over `k` of them and each step performs k-way
//! merges onto the single empty tape until one input tape runs dry; that
//! tape becomes the next output. The algorithm keeps every tape busy and
//! avoids the redistribution passes a naive tape merge would need.
//!
//! Two entry points are provided: [`polyphase_schedule`] computes only the
//! per-step run counts (which is exactly what Table 2.1 of the paper shows),
//! and [`polyphase_merge`] actually merges record runs stored on a device
//! using the same schedule.

use crate::error::{Result, SortError};
use crate::merge::kway::{KWayMerger, MergeConfig};
use crate::run_generation::{Device, RunCursor, RunHandle};
use std::collections::VecDeque;
use twrs_storage::{RunWriter, SortableRecord, SpillNamer};

/// Computes the evolution of the number of runs on each tape during a
/// polyphase merge, starting from `initial` (one entry per tape, at least
/// one of them zero).
///
/// The returned vector contains the tape contents **after** each step,
/// starting with the initial state — the rows of Table 2.1.
pub fn polyphase_schedule(initial: &[u64]) -> Vec<Vec<u64>> {
    let mut tapes: Vec<u64> = initial.to_vec();
    let mut steps = vec![tapes.clone()];
    if tapes.iter().filter(|t| **t > 0).count() < 2 {
        return steps;
    }
    // The output tape is an empty one; if none is empty the caller's
    // distribution is invalid for polyphase, fall back to using the smallest
    // tape after emptying it into the others is not meaningful, so just pick
    // an empty tape or stop.
    loop {
        let non_empty = tapes.iter().filter(|t| **t > 0).count();
        let total: u64 = tapes.iter().sum();
        if total <= 1 || non_empty <= 1 {
            break;
        }
        let output = match tapes.iter().position(|t| *t == 0) {
            Some(idx) => idx,
            None => break,
        };
        // Merge until the input tape with the fewest runs becomes empty.
        let merges = tapes
            .iter()
            .enumerate()
            .filter(|(i, t)| *i != output && **t > 0)
            .map(|(_, t)| *t)
            .min()
            .unwrap_or(0);
        if merges == 0 {
            break;
        }
        for (i, tape) in tapes.iter_mut().enumerate() {
            if i == output {
                *tape += merges;
            } else if *tape > 0 {
                *tape -= merges;
            }
        }
        steps.push(tapes.clone());
    }
    steps
}

/// Merges `runs` into the forward run `output` using a polyphase merge over
/// `num_tapes` tapes (`num_tapes - 1`-way merges).
///
/// The initial runs are distributed round-robin over `num_tapes - 1` tapes;
/// the remaining tape starts empty and receives the first merge output. The
/// function returns the number of merge steps (individual k-way merges)
/// performed.
pub fn polyphase_merge<D: Device, R: SortableRecord>(
    device: &D,
    namer: &SpillNamer,
    runs: Vec<RunHandle>,
    num_tapes: usize,
    output: &str,
) -> Result<u32> {
    if num_tapes < 3 {
        return Err(SortError::InvalidConfig(
            "polyphase merge needs at least 3 tapes".into(),
        ));
    }
    // An inner merger used to combine one run from each input tape; the
    // fan-in is always large enough for a single step.
    let merger = KWayMerger::new(MergeConfig {
        fan_in: num_tapes.max(2),
        read_ahead_records: 256,
    });

    let mut tapes: Vec<VecDeque<RunHandle>> = vec![VecDeque::new(); num_tapes];
    for (i, run) in runs.into_iter().enumerate() {
        tapes[i % (num_tapes - 1)].push_back(run);
    }
    let mut merge_steps = 0u32;

    loop {
        let total_runs: usize = tapes.iter().map(VecDeque::len).sum();
        if total_runs == 0 {
            // No input at all: create an empty output run.
            RunWriter::<R>::create(device, output)?.finish()?;
            return Ok(merge_steps);
        }
        if total_runs == 1 {
            // Copy the surviving run to the output name.
            let last: Vec<RunHandle> = tapes.iter_mut().filter_map(|t| t.pop_front()).collect();
            merger.merge_into::<D, R>(device, namer, last, output)?;
            return Ok(merge_steps + 1);
        }
        // If a merge round emptied every tape except the previous output
        // tape, redistribute its runs so the next round has at least two
        // input tapes (classic polyphase avoids this with a Fibonacci
        // distribution and dummy runs; redistribution is the simple general
        // fallback).
        let non_empty: Vec<usize> = (0..num_tapes).filter(|i| !tapes[*i].is_empty()).collect();
        if let [loaded] = non_empty[..] {
            let runs: Vec<RunHandle> = tapes[loaded].drain(..).collect();
            let targets: Vec<usize> = (0..num_tapes)
                .filter(|i| *i != loaded)
                .take(num_tapes - 1)
                .collect();
            for (i, run) in runs.into_iter().enumerate() {
                tapes[targets[i % targets.len()]].push_back(run);
            }
        }
        let output_tape = match tapes.iter().position(VecDeque::is_empty) {
            Some(idx) => idx,
            None => {
                return Err(SortError::InvalidConfig(
                    "polyphase merge requires one empty tape".into(),
                ));
            }
        };
        // Perform merges until some input tape becomes empty.
        loop {
            let input_indices: Vec<usize> = (0..num_tapes)
                .filter(|i| *i != output_tape && !tapes[*i].is_empty())
                .collect();
            if input_indices.len() < 2 {
                // Fewer than two inputs: nothing more to do in this step.
                break;
            }
            let batch: Vec<RunHandle> = input_indices
                .iter()
                .filter_map(|i| tapes[*i].pop_front())
                .collect();
            let name = namer.next_name("tape");
            merger.merge_into::<D, R>(device, namer, batch, &name)?;
            merge_steps += 1;
            tapes[output_tape].push_back(RunHandle::Forward(name));
            if input_indices.iter().any(|i| tapes[*i].is_empty()) {
                break;
            }
        }
    }
}

/// Reads a polyphase output for verification (test helper, also used by the
/// merge-phase experiment binary).
pub fn read_output<D: Device, R: SortableRecord>(device: &D, output: &str) -> Result<Vec<R>> {
    let mut cursor = RunCursor::<R>::open(device, &RunHandle::Forward(output.to_string()))?;
    cursor.read_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_sort_store::LoadSortStore;
    use crate::run_generation::RunGenerator;
    use twrs_storage::ModelId;
    use twrs_storage::SimDevice;
    use twrs_workloads::{Distribution, DistributionKind, Record};

    #[test]
    fn schedule_matches_paper_table_2_1() {
        let steps = polyphase_schedule(&[8, 10, 3, 0, 8, 11]);
        // Every row of Table 2.1.
        let expected: Vec<Vec<u64>> = vec![
            vec![8, 10, 3, 0, 8, 11],
            vec![5, 7, 0, 3, 5, 8],
            vec![2, 4, 3, 0, 2, 5],
            vec![0, 2, 1, 2, 0, 3],
            vec![1, 1, 0, 1, 0, 2],
            vec![0, 0, 1, 0, 0, 1],
            vec![1, 0, 0, 0, 0, 0],
        ];
        assert_eq!(steps, expected);
        let last = steps.last().unwrap();
        assert_eq!(last.iter().sum::<u64>(), 1);
        assert_eq!(last.iter().filter(|t| **t > 0).count(), 1);
    }

    #[test]
    fn schedule_with_single_tape_is_trivial() {
        let steps = polyphase_schedule(&[1, 0, 0]);
        assert_eq!(steps.len(), 1);
    }

    #[test]
    fn merge_produces_sorted_output() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("pp");
        let mut generator = LoadSortStore::new(100);
        let mut input = Distribution::new(DistributionKind::RandomUniform, 2_500, 21).records();
        let set = generator.generate(&device, &namer, &mut input).unwrap();
        assert_eq!(set.num_runs(), 25);

        let steps = polyphase_merge::<_, Record>(&device, &namer, set.runs, 4, "sorted").unwrap();
        assert!(steps > 1);
        let output = read_output::<_, Record>(&device, "sorted").unwrap();
        assert_eq!(output.len(), 2_500);
        assert!(output.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merge_single_run_copies_it() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("pp");
        let mut generator = LoadSortStore::new(1_000);
        let mut input = Distribution::new(DistributionKind::RandomUniform, 300, 2).records();
        let set = generator.generate(&device, &namer, &mut input).unwrap();
        polyphase_merge::<_, Record>(&device, &namer, set.runs, 4, "sorted").unwrap();
        let output = read_output::<_, Record>(&device, "sorted").unwrap();
        assert_eq!(output.len(), 300);
    }

    #[test]
    fn merge_empty_input() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("pp");
        polyphase_merge::<_, Record>(&device, &namer, Vec::new(), 4, "sorted").unwrap();
        let output = read_output::<_, Record>(&device, "sorted").unwrap();
        assert!(output.is_empty());
    }

    #[test]
    fn too_few_tapes_is_rejected() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("pp");
        assert!(matches!(
            polyphase_merge::<_, Record>(&device, &namer, Vec::new(), 2, "out"),
            Err(SortError::InvalidConfig(_))
        ));
    }

    #[test]
    fn merge_preserves_multiset() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("pp");
        let input: Vec<Record> =
            Distribution::new(DistributionKind::MixedBalanced, 1_200, 5).collect();
        let mut generator = LoadSortStore::new(64);
        let mut iter = input.clone().into_iter();
        let set = generator.generate(&device, &namer, &mut iter).unwrap();
        polyphase_merge::<_, Record>(&device, &namer, set.runs, 5, "sorted").unwrap();
        let mut output = read_output::<_, Record>(&device, "sorted").unwrap();
        let mut expected = input;
        output.sort_unstable();
        expected.sort_unstable();
        assert_eq!(output, expected);
    }
}
