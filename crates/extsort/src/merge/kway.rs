//! Multi-pass k-way merging with a bounded fan-in (§2.1.2, §6.1.1).
//!
//! The merge phase combines the runs left by run generation into one sorted
//! file. Merging everything at once is not always best: every run being
//! merged needs its own input buffer, and with many runs the disk head
//! bounces between their files, so the paper measures an optimal fan-in of
//! about 10 on its hardware (Figure 6.1). [`KWayMerger`] therefore merges at
//! most `fan_in` runs per step, queueing intermediate outputs until a single
//! run remains, and reads every input run through a read-ahead buffer whose
//! size models the per-run input buffer of the paper's implementation.

use crate::cancel::{CancellationToken, CANCEL_CHECK_INTERVAL};
use crate::error::{Result, SortError};
use crate::merge::loser_tree::LoserTree;
use crate::run_generation::{Device, RunCursor, RunHandle};
use crate::sink::{FileSink, RecordSink};
use std::collections::VecDeque;
use twrs_storage::{RunWriter, SortableRecord, SpillNamer};

/// Configuration of the k-way merge phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeConfig {
    /// Maximum number of runs merged in one step (the paper's fan-in; its
    /// experiments settle on 10).
    pub fan_in: usize,
    /// Per-run read-ahead buffer, in records. Larger buffers turn the
    /// interleaved page reads of a merge step into longer sequential bursts,
    /// trading memory for fewer seeks — the same trade-off as the paper's
    /// per-run input buffers.
    pub read_ahead_records: usize,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            fan_in: 10,
            read_ahead_records: 256,
        }
    }
}

/// Outcome of a merge phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Number of k-way merge steps executed.
    pub merge_steps: u32,
    /// Number of records written across every step, including intermediate
    /// runs (a proxy for merge I/O volume).
    pub records_written: u64,
    /// Number of records in the final output.
    pub output_records: u64,
}

impl MergeReport {
    /// Average number of times each output record was rewritten during the
    /// merge (1.0 when a single step sufficed).
    pub fn write_passes(&self) -> f64 {
        if self.output_records == 0 {
            0.0
        } else {
            self.records_written as f64 / self.output_records as f64
        }
    }
}

/// The multi-pass k-way merger.
#[derive(Debug, Clone, Default)]
pub struct KWayMerger {
    config: MergeConfig,
    cancel: CancellationToken,
}

impl KWayMerger {
    /// Creates a merger with the given configuration.
    pub fn new(config: MergeConfig) -> Self {
        KWayMerger {
            config,
            cancel: CancellationToken::new(),
        }
    }

    /// Installs a cooperative cancellation token, checked at the start of
    /// every merge step and every [`CANCEL_CHECK_INTERVAL`] merged records.
    pub fn with_cancel(mut self, cancel: CancellationToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> MergeConfig {
        self.config
    }

    /// Merges `runs` into a single forward run named `output` on `device`.
    ///
    /// Intermediate runs are created through `namer` and removed as soon as
    /// they have been consumed. Returns the merge report; the output file is
    /// a normal forward run readable with
    /// [`RunCursor`].
    pub fn merge_into<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &SpillNamer,
        runs: Vec<RunHandle>,
        output: &str,
    ) -> Result<MergeReport> {
        self.merge_into_outcome::<D, R>(device, namer, runs, output)
            .map(|outcome| outcome.report)
    }

    /// [`merge_into`](KWayMerger::merge_into) plus the final-pass page
    /// attribution the sorters report.
    pub(crate) fn merge_into_outcome<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &SpillNamer,
        runs: Vec<RunHandle>,
        output: &str,
    ) -> Result<MergePhaseOutcome> {
        merge_passes::<D, R, _>(
            device,
            namer,
            runs,
            output,
            self.config.fan_in,
            &self.cancel,
            |batch, name| self.merge_batch::<D, R>(device, batch, name),
        )
    }

    /// Opens each run of `batch` behind a read-ahead buffer, ready to feed
    /// the merge tree (or a suspended stream).
    pub(crate) fn open_sources<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        batch: &[RunHandle],
    ) -> Result<Vec<BufferedCursor<R>>> {
        batch
            .iter()
            .map(|handle| {
                RunCursor::open(device, handle)
                    .map(|cursor| BufferedCursor::new(cursor, self.config.read_ahead_records))
            })
            .collect()
    }

    /// Merges one batch of runs into the forward run `output`.
    pub(crate) fn merge_batch<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        batch: &[RunHandle],
        output: &str,
    ) -> Result<u64> {
        // Step boundary: a cancel() lands here before the batch's sources
        // are even opened.
        self.cancel.check()?;
        let mut sources = self.open_sources::<D, R>(device, batch)?;
        let writer = RunWriter::<R>::create(device, output)?;
        merge_sources(&mut sources, writer, &self.cancel)
    }
}

/// The runs left after the intermediate merge passes, plus the partial
/// [`MergeReport`] those passes accumulated. At most `fan_in` runs remain,
/// so one final merge step — into a file, a sink, or a suspended
/// [`SortedStream`](crate::stream::SortedStream) — finishes the sort.
pub(crate) struct ReducedRuns {
    /// The surviving runs, at most `fan_in` of them, in queue order.
    pub(crate) remaining: Vec<RunHandle>,
    /// Steps and records of the intermediate passes only
    /// (`output_records` still zero — the final pass has not run).
    pub(crate) report: MergeReport,
}

/// The intermediate half of the multi-pass merge scheduler shared by
/// [`KWayMerger`] and the parallel sorter's prefetching merger: batches at
/// most `fan_in` runs per step and queues the intermediate outputs until no
/// more than `fan_in` runs remain, removing consumed inputs as it goes.
/// `merge_batch(batch, name)` performs one step and returns the records
/// written. The final pass over the survivors is the caller's business —
/// that is where the file, sink and stream outputs diverge.
pub(crate) fn reduce_to_fan_in<D, F>(
    device: &D,
    namer: &SpillNamer,
    runs: Vec<RunHandle>,
    fan_in: usize,
    cancel: &CancellationToken,
    merge_batch: &mut F,
) -> Result<ReducedRuns>
where
    D: Device,
    F: FnMut(&[RunHandle], &str) -> Result<u64>,
{
    if fan_in < 2 {
        return Err(SortError::InvalidConfig(
            "merge fan-in must be at least 2".into(),
        ));
    }
    let mut report = MergeReport::default();
    let mut queue: VecDeque<RunHandle> = runs.into();
    while queue.len() > fan_in {
        // Pass boundary: the merge scheduler observes a cancel() between
        // any two intermediate passes.
        cancel.check()?;
        let batch: Vec<RunHandle> = queue.drain(..fan_in).collect();
        let name = namer.next_name("merge");
        let written = merge_batch(&batch, &name)?;
        report.merge_steps += 1;
        report.records_written += written;
        // Intermediate inputs are no longer needed.
        for handle in &batch {
            remove_run(device, handle)?;
        }
        queue.push_back(RunHandle::Forward(name));
    }
    Ok(ReducedRuns {
        remaining: queue.into(),
        report,
    })
}

/// Outcome of the full merge phase when it runs to completion (file and
/// sink outputs; a suspended stream never gets this far eagerly).
pub(crate) struct MergePhaseOutcome {
    /// The completed merge report.
    pub(crate) report: MergeReport,
    /// Pages the final pass alone wrote — the write I/O a streaming
    /// consumer avoids entirely.
    pub(crate) final_pass_pages_written: u64,
}

/// The shared final pass of the sink and stream sorters: drains the
/// surviving runs' `sources` into `sink`, finishes the sink, removes the
/// consumed runs and folds the step into `report`. Returns the pages the
/// pass wrote on `device` (whatever the sink itself wrote — zero for the
/// in-memory sinks), measured in its own snapshot window.
pub(crate) fn finish_into_sink<D, R, S, K>(
    device: &D,
    sources: &mut [S],
    sink: &mut K,
    remaining: &[RunHandle],
    report: &mut MergeReport,
    cancel: &CancellationToken,
) -> Result<u64>
where
    D: Device,
    R: SortableRecord,
    S: MergeSource<R>,
    K: RecordSink<R> + ?Sized,
{
    let before = device.stats();
    let delivered = merge_sources_into(sources, sink, cancel)?;
    sink.finish()?;
    for handle in remaining {
        remove_run(device, handle)?;
    }
    if !remaining.is_empty() {
        report.merge_steps += 1;
    }
    report.records_written += delivered;
    report.output_records = delivered;
    Ok(device.stats().counters.pages_written - before.counters.pages_written)
}

/// The complete multi-pass merge into a named output file:
/// [`reduce_to_fan_in`] followed by one final `merge_batch` into `output`
/// (an empty run when `runs` is empty, a copy step when a single run is
/// left, exactly as before the reduce/final split). The final pass's page
/// writes are measured in their own snapshot window.
pub(crate) fn merge_passes<D, R, F>(
    device: &D,
    namer: &SpillNamer,
    runs: Vec<RunHandle>,
    output: &str,
    fan_in: usize,
    cancel: &CancellationToken,
    mut merge_batch: F,
) -> Result<MergePhaseOutcome>
where
    D: Device,
    R: SortableRecord,
    F: FnMut(&[RunHandle], &str) -> Result<u64>,
{
    let ReducedRuns {
        remaining,
        mut report,
    } = reduce_to_fan_in(device, namer, runs, fan_in, cancel, &mut merge_batch)?;
    let before_final = device.stats();

    if remaining.is_empty() {
        // No input at all: produce an empty output run for uniformity.
        let writer = RunWriter::<R>::create(device, output)?;
        writer.finish()?;
    } else {
        // The final step also covers the single-run case: the run is copied
        // to the output name so the caller always finds its result there.
        let written = merge_batch(&remaining, output)?;
        for handle in &remaining {
            remove_run(device, handle)?;
        }
        report.merge_steps += 1;
        report.records_written += written;
        report.output_records = written;
    }
    let final_writes = device.stats().counters.pages_written - before_final.counters.pages_written;
    Ok(MergePhaseOutcome {
        report,
        final_pass_pages_written: final_writes,
    })
}

/// A stream of ascending records feeding one leaf of the merge tree: a
/// [`BufferedCursor`] reading synchronously, or the consumer end of a
/// background prefetch thread in the parallel sorter.
pub(crate) trait MergeSource<R: SortableRecord> {
    /// The next record of the stream, or `None` at the end.
    fn next_record(&mut self) -> Result<Option<R>>;
}

impl<R: SortableRecord> MergeSource<R> for BufferedCursor<R> {
    fn next_record(&mut self) -> Result<Option<R>> {
        BufferedCursor::next_record(self)
    }
}

/// The inner loop shared by the sequential and parallel mergers: drains
/// `sources` through a loser tree into `writer` and returns the number of
/// records written. A thin wrapper of [`merge_sources_into`] over the file
/// sink, which is what makes `run_iter`'s output byte-identical to a
/// hand-rolled [`FileSink`] drain.
pub(crate) fn merge_sources<R: SortableRecord, S: MergeSource<R>>(
    sources: &mut [S],
    writer: RunWriter<R>,
    cancel: &CancellationToken,
) -> Result<u64> {
    let mut sink = FileSink::from_writer(writer);
    let written = merge_sources_into(sources, &mut sink, cancel)?;
    sink.finish()?;
    Ok(written)
}

/// Drains `sources` through a loser tree into any [`RecordSink`] and
/// returns the number of records delivered. The caller finishes the sink
/// (so sink ownership stays with it — a failed push must still be able to
/// clean up).
pub(crate) fn merge_sources_into<R: SortableRecord, S: MergeSource<R>, K>(
    sources: &mut [S],
    sink: &mut K,
    cancel: &CancellationToken,
) -> Result<u64>
where
    K: RecordSink<R> + ?Sized,
{
    if sources.is_empty() {
        return Ok(0);
    }
    let mut heads: Vec<Option<R>> = sources
        .iter_mut()
        .map(|s| s.next_record())
        .collect::<Result<_>>()?;
    let mut tree = LoserTree::new(&heads);
    let mut written = 0u64;
    loop {
        // Page-grained cancellation point: roughly one output page of
        // small records between checks, so a running merge observes
        // cancel() within a bounded amount of I/O.
        if written % CANCEL_CHECK_INTERVAL == 0 {
            cancel.check()?;
        }
        let winner = tree.winner();
        match heads[winner].take() {
            Some(record) => {
                sink.push(record)?;
                written += 1;
                heads[winner] = sources[winner].next_record()?;
                tree.replay(&heads, winner);
            }
            None => break,
        }
    }
    Ok(written)
}

/// Removes a run (and, for reverse runs, all its part files) from the
/// device.
pub(crate) fn remove_run(
    device: &dyn twrs_storage::StorageDevice,
    handle: &RunHandle,
) -> Result<()> {
    match handle {
        RunHandle::Forward(name) => {
            if device.exists(name) {
                device.remove(name)?;
            }
        }
        RunHandle::Reverse(name) => {
            let mut part = 0;
            loop {
                let part_name = format!("{name}.part{part}");
                if device.exists(&part_name) {
                    device.remove(&part_name)?;
                    part += 1;
                } else {
                    break;
                }
            }
        }
        RunHandle::Chain(parts) => {
            for part in parts {
                remove_run(device, part)?;
            }
        }
    }
    Ok(())
}

/// A run cursor with a read-ahead buffer.
pub(crate) struct BufferedCursor<R: SortableRecord> {
    cursor: RunCursor<R>,
    buffer: VecDeque<R>,
    read_ahead: usize,
    exhausted: bool,
}

impl<R: SortableRecord> BufferedCursor<R> {
    pub(crate) fn new(cursor: RunCursor<R>, read_ahead: usize) -> Self {
        BufferedCursor {
            cursor,
            buffer: VecDeque::with_capacity(read_ahead.max(1)),
            read_ahead: read_ahead.max(1),
            exhausted: false,
        }
    }

    pub(crate) fn next_record(&mut self) -> Result<Option<R>> {
        if self.buffer.is_empty() && !self.exhausted {
            for _ in 0..self.read_ahead {
                match self.cursor.next_record()? {
                    Some(r) => self.buffer.push_back(r),
                    None => {
                        self.exhausted = true;
                        break;
                    }
                }
            }
        }
        Ok(self.buffer.pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_sort_store::LoadSortStore;
    use crate::run_generation::{RunGenerator, RunSet};
    use twrs_storage::ModelId;
    use twrs_storage::{SimDevice, SpillNamer, StorageDevice};
    use twrs_workloads::{Distribution, DistributionKind, Record};

    fn make_runs(device: &SimDevice, namer: &SpillNamer, records: u64, memory: usize) -> RunSet {
        let mut generator = LoadSortStore::new(memory);
        let mut input = Distribution::new(DistributionKind::RandomUniform, records, 99).records();
        generator.generate(device, namer, &mut input).unwrap()
    }

    fn read_output(device: &SimDevice, name: &str) -> Vec<Record> {
        let mut cursor =
            RunCursor::<Record>::open(device, &RunHandle::Forward(name.into())).unwrap();
        cursor.read_all().unwrap()
    }

    #[test]
    fn merges_to_a_single_sorted_output() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("m");
        let set = make_runs(&device, &namer, 5_000, 250);
        assert_eq!(set.num_runs(), 20);
        let merger = KWayMerger::new(MergeConfig {
            fan_in: 4,
            read_ahead_records: 64,
        });
        let report = merger
            .merge_into::<_, Record>(&device, &namer, set.runs.clone(), "sorted")
            .unwrap();
        assert_eq!(report.output_records, 5_000);
        let output = read_output(&device, "sorted");
        assert_eq!(output.len(), 5_000);
        assert!(output.windows(2).all(|w| w[0] <= w[1]));
        // With fan-in 4 and 20 runs more than one step is needed.
        assert!(report.merge_steps > 1);
        assert!(report.write_passes() > 1.0);
    }

    #[test]
    fn single_step_when_fan_in_covers_all_runs() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("m");
        let set = make_runs(&device, &namer, 2_000, 250);
        let merger = KWayMerger::new(MergeConfig {
            fan_in: 16,
            read_ahead_records: 64,
        });
        let report = merger
            .merge_into::<_, Record>(&device, &namer, set.runs, "sorted")
            .unwrap();
        assert_eq!(report.merge_steps, 1);
        assert_eq!(report.records_written, 2_000);
        assert!((report.write_passes() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn single_run_is_copied_to_output() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("m");
        let set = make_runs(&device, &namer, 100, 1_000);
        assert_eq!(set.num_runs(), 1);
        let merger = KWayMerger::default();
        let report = merger
            .merge_into::<_, Record>(&device, &namer, set.runs, "sorted")
            .unwrap();
        assert_eq!(report.output_records, 100);
        assert_eq!(read_output(&device, "sorted").len(), 100);
    }

    #[test]
    fn empty_run_list_produces_empty_output() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("m");
        let merger = KWayMerger::default();
        let report = merger
            .merge_into::<_, Record>(&device, &namer, Vec::new(), "sorted")
            .unwrap();
        assert_eq!(report.output_records, 0);
        assert!(read_output(&device, "sorted").is_empty());
    }

    #[test]
    fn intermediate_runs_are_cleaned_up() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("m");
        let set = make_runs(&device, &namer, 3_000, 100);
        let merger = KWayMerger::new(MergeConfig {
            fan_in: 3,
            read_ahead_records: 32,
        });
        merger
            .merge_into::<_, Record>(&device, &namer, set.runs, "sorted")
            .unwrap();
        // Only the final output (plus the original unsorted input, which we
        // never created here) should remain on the device.
        let files = device.list();
        assert_eq!(files, vec!["sorted".to_string()]);
    }

    #[test]
    fn fan_in_below_two_is_rejected() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("m");
        let merger = KWayMerger::new(MergeConfig {
            fan_in: 1,
            read_ahead_records: 32,
        });
        assert!(matches!(
            merger.merge_into::<_, Record>(&device, &namer, Vec::new(), "out"),
            Err(SortError::InvalidConfig(_))
        ));
    }

    #[test]
    fn larger_read_ahead_reduces_seeks() {
        let build = |read_ahead: usize| -> u64 {
            let device = SimDevice::with_model(ModelId::Hdd7200);
            let namer = SpillNamer::new("m");
            let set = make_runs(&device, &namer, 20_000, 1_000);
            device.reset_stats();
            let merger = KWayMerger::new(MergeConfig {
                fan_in: 20,
                read_ahead_records: read_ahead,
            });
            merger
                .merge_into::<_, Record>(&device, &namer, set.runs, "sorted")
                .unwrap();
            device.stats().counters.seeks
        };
        let few = build(1);
        let many = build(1024);
        assert!(
            many < few,
            "read-ahead should reduce seeks: {many} !< {few}"
        );
    }
}
