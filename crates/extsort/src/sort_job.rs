//! The builder-style front door of the whole sorting pipeline.
//!
//! [`ExternalSorter`] and
//! [`ParallelExternalSorter`] are
//! the two engines of the pipeline; [`SortJob`] is the single entry point
//! that drives either of them from one description of the work:
//!
//! ```
//! use twrs_extsort::{ReplacementSelection, SortJob};
//! use twrs_storage::{ModelId, SimDevice};
//! use twrs_workloads::{Distribution, DistributionKind};
//!
//! let device = SimDevice::with_model(ModelId::Hdd7200);
//! let input = Distribution::new(DistributionKind::RandomUniform, 10_000, 7);
//! let report = SortJob::new(ReplacementSelection::new(200))
//!     .on(&device)
//!     .threads(4)
//!     .verify(true)
//!     .run_iter(input.records(), "sorted")
//!     .expect("sort succeeds");
//! assert_eq!(report.report.records, 10_000);
//! assert_eq!(report.threads, 4);
//! ```
//!
//! `threads(1)` (the default) runs the sequential sorter; any larger count
//! runs the sharded parallel sorter. Both paths produce **byte-identical**
//! output for the same input, so the thread count is purely a performance
//! knob. The record type is a free parameter: `run_iter` infers it from the
//! input iterator, `run_file_as` takes it explicitly (a file name cannot
//! reveal it).

use crate::cancel::CancellationToken;
use crate::error::{Result, SortError};
use crate::merge::kway::MergeConfig;
use crate::parallel::{
    ParallelExternalSorter, ParallelSortReport, ParallelSorterConfig, ShardReport,
    ShardableGenerator,
};
use crate::run_generation::{sort_dataset_file, Device};
use crate::sink::RecordSink;
use crate::sorter::{ExternalSorter, FinalPassKind, PhaseReport, SortReport, SorterConfig};
use crate::stream::SortedStream;
use twrs_storage::SortableRecord;

/// The report of one [`SortJob`] run: the familiar aggregated
/// [`SortReport`] plus, when the job ran in parallel, the per-shard
/// breakdown.
#[derive(Debug, Clone)]
pub struct SortJobReport {
    /// Aggregated per-phase report, identical in shape for the sequential
    /// and the parallel path (directly comparable across thread counts).
    pub report: SortReport,
    /// Number of generation threads the job used (1 = sequential path).
    pub threads: usize,
    /// Per-shard breakdown of the run-generation phase; `None` when the
    /// job ran on the sequential path.
    pub shards: Option<Vec<ShardReport>>,
    /// How the final merge pass delivered the output: a device file
    /// (`run_iter`/`run_file`), a caller [`RecordSink`] (`sink_iter`), or a
    /// suspended [`SortedStream`] (`stream_iter`/`stream_file_as`). The
    /// bench suite uses this together with
    /// [`final_pass_pages_written`](SortJobReport::final_pass_pages_written)
    /// to attribute the write pass a streaming consumer saves.
    pub final_pass: FinalPassKind,
}

impl SortJobReport {
    /// Wraps a sequential engine report.
    pub(crate) fn sequential(report: SortReport) -> Self {
        SortJobReport {
            final_pass: report.final_pass,
            report,
            threads: 1,
            shards: None,
        }
    }

    /// Wraps a parallel engine report.
    pub(crate) fn parallel(parallel: ParallelSortReport) -> Self {
        SortJobReport {
            final_pass: parallel.report.final_pass,
            report: parallel.report,
            threads: parallel.threads,
            shards: Some(parallel.shards),
        }
    }

    /// `true` when the job ran the sharded parallel pipeline.
    pub fn is_parallel(&self) -> bool {
        self.shards.is_some()
    }

    /// Pages written by the final merge pass alone — `0` for a streamed
    /// job, the output-file write for a file job.
    pub fn final_pass_pages_written(&self) -> u64 {
        self.report.final_pass_pages_written
    }

    /// Number of runs the generation phase produced.
    pub fn num_runs(&self) -> usize {
        self.report.num_runs
    }

    /// Average run length in records.
    pub fn average_run_length(&self) -> f64 {
        self.report.average_run_length
    }

    /// The phases the job measured, in pipeline order: run generation,
    /// merge and (when enabled) the verification scan.
    pub fn phases(&self) -> impl Iterator<Item = &PhaseReport> {
        [&self.report.run_generation, &self.report.merge]
            .into_iter()
            .chain(self.report.verify.as_ref())
    }

    /// Pages read across every measured phase (including the optional
    /// verification scan).
    pub fn total_pages_read(&self) -> u64 {
        self.phases().map(|p| p.pages_read).sum()
    }

    /// Pages written across every measured phase.
    pub fn total_pages_written(&self) -> u64 {
        self.phases().map(|p| p.pages_written).sum()
    }

    /// Seeks across every measured phase.
    pub fn total_seeks(&self) -> u64 {
        self.phases().map(|p| p.seeks).sum()
    }

    /// Simulated I/O time across every measured phase — deterministic on
    /// the simulated device, which makes it comparable across machines.
    pub fn total_simulated_io(&self) -> std::time::Duration {
        self.phases().map(|p| p.simulated_io).sum()
    }

    /// Wall-clock time across every measured phase.
    pub fn total_wall(&self) -> std::time::Duration {
        self.phases().map(|p| p.wall).sum()
    }

    /// Input records sorted per wall-clock second, over all phases; `0.0`
    /// when the job finished too fast for the clock to register.
    pub fn records_per_second(&self) -> f64 {
        let secs = self.total_wall().as_secs_f64();
        if secs > 0.0 {
            self.report.records as f64 / secs
        } else {
            0.0
        }
    }

    /// `true` when the report's I/O accounting is internally consistent:
    /// for a parallel run, exactly
    /// [`ParallelSortReport::io_is_consistent`] (the aggregated
    /// run-generation writes equal the field-wise shard sums, the phase's
    /// reads cover the shards' own reads, and the shard record counts sum
    /// to the total); trivially `true` for a sequential run, whose phases
    /// are measured directly on the device.
    pub fn io_is_consistent(&self) -> bool {
        match &self.shards {
            None => true,
            // Delegate to the engine's invariant so the two reports can
            // never drift apart.
            Some(shards) => ParallelSortReport {
                report: self.report.clone(),
                threads: self.threads,
                shards: shards.clone(),
            }
            .io_is_consistent(),
        }
    }
}

/// Builder describing a sort before a device is attached; created with
/// [`SortJob::new`] and bound to a device with [`SortJob::on`].
///
/// See the [module documentation](self) for the full chain.
#[derive(Debug, Clone)]
pub struct SortJob<G> {
    pub(crate) generator: G,
    pub(crate) threads: usize,
    pub(crate) config: SorterConfig,
    pub(crate) cancel: CancellationToken,
}

impl<G> SortJob<G> {
    /// Starts describing a sort that uses `generator` for run generation.
    ///
    /// Defaults: one thread (the sequential pipeline), no verification
    /// pass, and the default [`MergeConfig`] — exactly the behaviour of
    /// `ExternalSorter` with a default [`SorterConfig`].
    pub fn new(generator: G) -> Self {
        SortJob {
            generator,
            threads: 1,
            config: SorterConfig::default(),
            cancel: CancellationToken::new(),
        }
    }

    /// Sets the number of generation threads. `1` (the default) selects
    /// the sequential pipeline; larger counts select the sharded parallel
    /// pipeline with the generator's memory budget divided across shards.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the post-merge verification scan (reported in
    /// its own phase window, never polluting the merge attribution).
    pub fn verify(mut self, verify: bool) -> Self {
        self.config.verify = verify;
        self
    }

    /// Replaces the whole pipeline configuration (merge parameters and
    /// verify flag) in one call.
    pub fn config(mut self, config: SorterConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the merge-phase configuration (fan-in and per-run read-ahead).
    pub fn merge(mut self, merge: MergeConfig) -> Self {
        self.config.merge = merge;
        self
    }

    /// Installs a cooperative [`CancellationToken`]. The phase loops of
    /// either engine poll it at phase/page boundaries; once a clone of the
    /// token is [`cancel`](CancellationToken::cancel)ed, the job stops at
    /// the next boundary, removes its spill files (and any partial output)
    /// and returns [`SortError::Canceled`]. The
    /// [`SortService`](crate::service::SortService) wires the token of
    /// every submitted job to its [`JobHandle`](crate::service::JobHandle).
    pub fn cancel_token(mut self, cancel: CancellationToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Binds the job to a storage device, after which it can run.
    ///
    /// The device handle is cloned; every [`Device`] in this workspace is a
    /// cheap shared handle onto the same underlying storage.
    pub fn on<D: Device>(self, device: &D) -> BoundSortJob<G, D> {
        BoundSortJob {
            job: self,
            device: device.clone(),
        }
    }
}

/// A [`SortJob`] bound to a device: the runnable form of the builder.
///
/// All of [`SortJob`]'s setters are available here too, so the chain order
/// does not matter.
#[derive(Debug, Clone)]
pub struct BoundSortJob<G, D: Device> {
    pub(crate) job: SortJob<G>,
    pub(crate) device: D,
}

/// What a [`BoundSortJob`] should do with the merged output — the one
/// description both the direct `run_*`/`sink_*`/`stream_*` methods and the
/// [`SortService`](crate::service::SortService) hand to
/// [`BoundSortJob::execute`], the single execution spine of the pipeline.
pub(crate) enum ExecutionPlan<'a, R: SortableRecord> {
    /// Write the sorted sequence into the forward run file `output`.
    File {
        /// The unsorted input records.
        input: &'a mut dyn Iterator<Item = R>,
        /// Name of the output file on the bound device.
        output: &'a str,
    },
    /// Drain the final merge pass into a caller-provided sink.
    Sink {
        /// The unsorted input records.
        input: &'a mut dyn Iterator<Item = R>,
        /// Destination of the sorted sequence.
        sink: &'a mut dyn RecordSink<R>,
    },
    /// Suspend the final merge into a lazy [`SortedStream`].
    Stream {
        /// The unsorted input records.
        input: &'a mut dyn Iterator<Item = R>,
    },
}

/// Result of [`BoundSortJob::execute`]: a report for the eager plans, a
/// suspended stream for [`ExecutionPlan::Stream`].
pub(crate) enum ExecutionOutcome<R: SortableRecord> {
    /// The job ran to completion ([`ExecutionPlan::File`] / `Sink`).
    Report(SortJobReport),
    /// The final merge was suspended ([`ExecutionPlan::Stream`]).
    Stream(SortedStream<R>),
}

impl<R: SortableRecord> ExecutionOutcome<R> {
    fn into_report(self) -> SortJobReport {
        match self {
            ExecutionOutcome::Report(report) => report,
            // `execute` maps File/Sink plans to reports by construction.
            ExecutionOutcome::Stream(_) => {
                // twrs-lint: allow(no-lib-panic) eager plans construct only report outcomes
                unreachable!("an eager execution plan produced a stream")
            }
        }
    }

    fn into_stream(self) -> SortedStream<R> {
        match self {
            ExecutionOutcome::Stream(stream) => stream,
            ExecutionOutcome::Report(_) => {
                // twrs-lint: allow(no-lib-panic) stream plans construct only stream outcomes
                unreachable!("a stream execution plan produced a report")
            }
        }
    }
}

impl<G, D: Device> BoundSortJob<G, D> {
    /// Sets the number of generation threads; see [`SortJob::threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.job = self.job.threads(threads);
        self
    }

    /// Enables or disables the verification scan; see [`SortJob::verify`].
    pub fn verify(mut self, verify: bool) -> Self {
        self.job = self.job.verify(verify);
        self
    }

    /// Replaces the pipeline configuration; see [`SortJob::config`].
    pub fn config(mut self, config: SorterConfig) -> Self {
        self.job = self.job.config(config);
        self
    }

    /// Sets the merge-phase configuration; see [`SortJob::merge`].
    pub fn merge(mut self, merge: MergeConfig) -> Self {
        self.job = self.job.merge(merge);
        self
    }

    /// Installs a cooperative cancellation token; see
    /// [`SortJob::cancel_token`].
    pub fn cancel_token(mut self, cancel: CancellationToken) -> Self {
        self.job = self.job.cancel_token(cancel);
        self
    }

    /// The parallel configuration this job expands to for its thread count
    /// (also meaningful for `threads == 1`, where it mirrors the
    /// sequential [`SorterConfig`]).
    fn parallel_config(&self) -> ParallelSorterConfig {
        ParallelSorterConfig {
            threads: self.job.threads,
            merge: self.job.config.merge,
            verify: self.job.config.verify,
            ..ParallelSorterConfig::default()
        }
    }

    /// Runs this job according to `plan` — **the** execution spine of the
    /// pipeline. Every public entry point (`run_iter`, `sink_iter`,
    /// `stream_iter`, the `*_file*` wrappers) and the
    /// [`SortService`](crate::service::SortService) worker pool funnel
    /// through here, so sequential-vs-parallel dispatch exists exactly
    /// once.
    pub(crate) fn execute<R: SortableRecord>(
        self,
        plan: ExecutionPlan<'_, R>,
    ) -> Result<ExecutionOutcome<R>>
    where
        G: ShardableGenerator,
    {
        // Admit this job as one I/O client for the duration of the run: on
        // a striped device every concurrently executing job then fair-shares
        // the simulated bandwidth (see `twrs_storage::SharedBandwidthModel`);
        // on plain devices this is a no-op.
        let _io_client = self.device.attach_io_client();
        match self.job.threads {
            0 => Err(SortError::InvalidConfig(
                "a sort job needs at least one thread".into(),
            )),
            1 => {
                let mut sorter = ExternalSorter::with_config(self.job.generator, self.job.config);
                sorter.set_cancel_token(self.job.cancel.clone());
                match plan {
                    ExecutionPlan::File { input, output } => sorter
                        .sort_iter(&self.device, input, output)
                        .map(|report| ExecutionOutcome::Report(SortJobReport::sequential(report))),
                    ExecutionPlan::Sink { input, sink } => sorter
                        .sort_iter_sink(&self.device, input, sink)
                        .map(|report| ExecutionOutcome::Report(SortJobReport::sequential(report))),
                    ExecutionPlan::Stream { input } => sorter
                        .sort_iter_stream(&self.device, input)
                        .map(ExecutionOutcome::Stream),
                }
            }
            _ => {
                let config = self.parallel_config();
                let mut sorter = ParallelExternalSorter::with_config(self.job.generator, config);
                sorter.set_cancel_token(self.job.cancel.clone());
                match plan {
                    ExecutionPlan::File { input, output } => sorter
                        .sort_iter(&self.device, input, output)
                        .map(|report| ExecutionOutcome::Report(SortJobReport::parallel(report))),
                    ExecutionPlan::Sink { input, sink } => sorter
                        .sort_iter_sink(&self.device, input, sink)
                        .map(|report| ExecutionOutcome::Report(SortJobReport::parallel(report))),
                    ExecutionPlan::Stream { input } => sorter
                        .sort_iter_stream(&self.device, input)
                        .map(ExecutionOutcome::Stream),
                }
            }
        }
    }

    /// Sorts the records produced by `input` into the forward run file
    /// `output` on the bound device and returns the unified report.
    pub fn run_iter<R: SortableRecord>(
        self,
        mut input: impl Iterator<Item = R>,
        output: &str,
    ) -> Result<SortJobReport>
    where
        G: ShardableGenerator,
    {
        self.execute(ExecutionPlan::File {
            input: &mut input,
            output,
        })
        .map(ExecutionOutcome::into_report)
    }

    /// Sorts the records produced by `input` straight into `sink`: the
    /// final merge pass drains into the sink, so a non-file sink performs
    /// **zero final-output page writes** — no output file exists at all.
    ///
    /// The report's `final_pass` is [`FinalPassKind::Sink`]; the
    /// verification flag is file-specific and ignored (the sink receives
    /// ascending records by construction). If the sink fails mid-drain the
    /// job removes every remaining run and spill file before returning the
    /// error.
    pub fn sink_iter<R: SortableRecord, K>(
        self,
        mut input: impl Iterator<Item = R>,
        sink: &mut K,
    ) -> Result<SortJobReport>
    where
        G: ShardableGenerator,
        K: RecordSink<R> + ?Sized,
    {
        // `dyn RecordSink` adapter: `K` may itself be unsized, so reborrow
        // through a small forwarding shim.
        struct Reborrow<'a, K: ?Sized>(&'a mut K);
        impl<R: SortableRecord, K: RecordSink<R> + ?Sized> RecordSink<R> for Reborrow<'_, K> {
            fn push(&mut self, record: R) -> Result<()> {
                self.0.push(record)
            }
            fn finish(&mut self) -> Result<()> {
                self.0.finish()
            }
        }
        let mut sink = Reborrow(sink);
        self.execute(ExecutionPlan::Sink {
            input: &mut input,
            sink: &mut sink,
        })
        .map(ExecutionOutcome::into_report)
    }

    /// Sorts the records produced by `input` into a lazy [`SortedStream`]:
    /// run generation and the intermediate merge passes execute eagerly,
    /// but the final k-way merge is suspended into the returned iterator
    /// and performed on `next()` — no output file, zero final-pass write
    /// I/O, and on the parallel path one background prefetch thread per
    /// surviving run keeps feeding the stream.
    ///
    /// The stream yields exactly the record sequence `run_iter` would have
    /// written, owns the sort's spill files, and removes them when it is
    /// consumed, [`close`](SortedStream::close)d or dropped. Its
    /// [`report`](SortedStream::report) snapshot has
    /// `final_pass == `[`FinalPassKind::Streamed`].
    pub fn stream_iter<R: SortableRecord>(
        self,
        mut input: impl Iterator<Item = R>,
    ) -> Result<SortedStream<R>>
    where
        G: ShardableGenerator,
    {
        self.execute(ExecutionPlan::Stream { input: &mut input })
            .map(ExecutionOutcome::into_stream)
    }

    /// Sorts a dataset of `R` records previously materialised on the bound
    /// device into a lazy [`SortedStream`]; the streaming counterpart of
    /// [`run_file_as`](BoundSortJob::run_file_as). Call as
    /// `.stream_file_as::<MyRecord>(…)` (a file name cannot reveal its
    /// record type); the facade crate provides a `stream_file` extension
    /// method for the default paper record.
    ///
    /// A corrupt or truncated input surfaces as an error, never a panic,
    /// and the sort's spill files are removed before the error is returned.
    pub fn stream_file_as<R: SortableRecord>(self, input: &str) -> Result<SortedStream<R>>
    where
        G: ShardableGenerator,
    {
        let device = self.device.clone();
        sort_dataset_file::<D, R, _>(&device, input, None, |iter| self.stream_iter(iter))
    }

    /// Sorts a dataset of `R` records previously materialised on the bound
    /// device (see `twrs_workloads::materialize`) into the forward run file
    /// `output`.
    ///
    /// The record type cannot be inferred from the file names, so call
    /// this as `.run_file_as::<MyRecord>(…)`. For the default paper record
    /// the facade crate provides a `run_file` extension method. A corrupt
    /// or truncated input surfaces as an error, never a panic, and the
    /// partial output file is removed.
    pub fn run_file_as<R: SortableRecord>(self, input: &str, output: &str) -> Result<SortJobReport>
    where
        G: ShardableGenerator,
    {
        let device = self.device.clone();
        sort_dataset_file::<D, R, _>(&device, input, Some(output), |iter| {
            self.run_iter(iter, output)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_sort_store::LoadSortStore;
    use crate::replacement_selection::ReplacementSelection;
    use crate::run_generation::{RunCursor, RunHandle};
    use twrs_storage::{ModelId, SimDevice};
    use twrs_workloads::{Distribution, DistributionKind, Record};

    fn read_records(device: &SimDevice, name: &str) -> Vec<Record> {
        RunCursor::<Record>::open(device, &RunHandle::Forward(name.into()))
            .unwrap()
            .read_all()
            .unwrap()
    }

    #[test]
    fn sequential_and_parallel_paths_agree() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let input = Distribution::new(DistributionKind::MixedBalanced, 3_000, 3);
        let seq = SortJob::new(ReplacementSelection::new(100))
            .on(&device)
            .verify(true)
            .run_iter(input.records(), "seq")
            .unwrap();
        let par = SortJob::new(ReplacementSelection::new(100))
            .on(&device)
            .threads(3)
            .verify(true)
            .run_iter(input.records(), "par")
            .unwrap();
        assert!(!seq.is_parallel());
        assert!(par.is_parallel());
        assert_eq!(par.shards.as_ref().map(Vec::len), Some(3));
        assert!(seq.io_is_consistent());
        assert!(par.io_is_consistent());
        assert_eq!(read_records(&device, "seq"), read_records(&device, "par"));
    }

    #[test]
    fn setters_compose_in_any_order() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let input = Distribution::new(DistributionKind::RandomUniform, 500, 9);
        let report = SortJob::new(LoadSortStore::new(64))
            .threads(2)
            .on(&device)
            .merge(MergeConfig {
                fan_in: 3,
                read_ahead_records: 16,
            })
            .verify(true)
            .run_iter(input.records(), "out")
            .unwrap();
        assert_eq!(report.threads, 2);
        assert_eq!(report.report.records, 500);
    }

    #[test]
    fn aggregate_accessors_sum_every_phase() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let input = Distribution::new(DistributionKind::RandomUniform, 2_000, 5);
        let job = SortJob::new(ReplacementSelection::new(100))
            .on(&device)
            .verify(true)
            .run_iter(input.records(), "out")
            .unwrap();
        let report = &job.report;
        let verify = report.verify.expect("verify phase present");
        assert_eq!(job.phases().count(), 3);
        assert_eq!(
            job.total_pages_read(),
            report.run_generation.pages_read + report.merge.pages_read + verify.pages_read
        );
        assert_eq!(
            job.total_pages_written(),
            report.run_generation.pages_written + report.merge.pages_written + verify.pages_written
        );
        assert_eq!(
            job.total_seeks(),
            report.run_generation.seeks + report.merge.seeks + verify.seeks
        );
        assert_eq!(job.num_runs(), report.num_runs);
        assert_eq!(job.average_run_length(), report.average_run_length);
        assert!(job.total_simulated_io() > std::time::Duration::ZERO);
        // 2000 records in some positive wall time.
        assert!(job.records_per_second() >= 0.0);
    }

    #[test]
    fn zero_threads_is_rejected() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let result = SortJob::new(LoadSortStore::new(64))
            .on(&device)
            .threads(0)
            .run_iter(std::iter::empty::<Record>(), "out");
        assert!(matches!(result, Err(SortError::InvalidConfig(_))));
    }
}
