//! Poison-tolerant locking helpers, shared by every `std::sync` user in
//! this crate.
//!
//! A poisoned mutex means some thread panicked while holding the guard.
//! Every lock in this crate protects state that stays structurally valid
//! across a panic (counters, queues, small state machines whose updates
//! are single assignments), so the right response is to keep going with
//! the inner value rather than to propagate a second panic — a panicking
//! worker must not take the whole `SortService` down with it. Centralizing
//! the recovery here keeps that policy in one audited place; the
//! `no-lib-panic` lint (see `crates/lint/RULES.md`) rejects ad-hoc
//! `.lock().unwrap()` everywhere else.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Acquires `mutex`, recovering the guard if a previous holder panicked.
pub fn lock_or_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `condvar`, recovering the reacquired guard if some holder
/// panicked while this thread was parked.
pub fn wait_or_poison<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}
