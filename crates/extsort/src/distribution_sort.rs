//! External distribution (bucket) sort (§2.2).
//!
//! The alternative to the merge paradigm: records are partitioned into
//! buckets whose key ranges do not overlap, each bucket is sorted
//! independently (in memory when it fits, recursively otherwise) and the
//! sorted buckets are concatenated — no merge phase is needed. The paper
//! presents it as context for external sorting; it is implemented here so
//! the repository covers both paradigms and so tests can cross-check the
//! merge-based sorters against an independent implementation.

use crate::error::{Result, SortError};
use crate::run_generation::{Device, FallibleRecords};
use twrs_storage::{RunReader, RunWriter, SortableRecord, SpillNamer};

/// Configuration of the external distribution sort.
#[derive(Debug, Clone, Copy)]
pub struct DistributionSortConfig {
    /// Number of records that fit in memory (buckets at most this size are
    /// sorted with an in-memory sort).
    pub memory_records: usize,
    /// Number of buckets per partitioning pass.
    pub buckets: usize,
    /// Maximum recursion depth before falling back to an in-memory sort of
    /// whatever the bucket holds (protects against heavily skewed data where
    /// a single key exceeds the memory budget).
    pub max_depth: usize,
}

impl Default for DistributionSortConfig {
    fn default() -> Self {
        DistributionSortConfig {
            memory_records: 100_000,
            buckets: 16,
            max_depth: 8,
        }
    }
}

/// Report of an external distribution sort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistributionSortReport {
    /// Records sorted.
    pub records: u64,
    /// Number of partitioning passes performed (over all recursion levels).
    pub partition_passes: u32,
    /// Number of buckets that were sorted in memory.
    pub leaf_buckets: u32,
}

/// External distribution sort.
#[derive(Debug, Clone, Default)]
pub struct DistributionSort {
    config: DistributionSortConfig,
}

impl DistributionSort {
    /// Creates a distribution sort with the given configuration.
    pub fn new(config: DistributionSortConfig) -> Self {
        DistributionSort { config }
    }

    /// Creates a distribution sort with a memory budget and the default
    /// bucket count.
    pub fn with_memory(memory_records: usize) -> Self {
        DistributionSort {
            config: DistributionSortConfig {
                memory_records,
                ..DistributionSortConfig::default()
            },
        }
    }

    /// Sorts `input` into the forward run file `output` on `device`.
    ///
    /// Bucket key ranges are derived from
    /// [`SortableRecord::sort_key`]; records whose type keeps the default
    /// (constant) projection all land in one bucket whose degenerate key
    /// range falls straight back to an in-memory sort of everything — still
    /// correct, but unbounded memory and no partitioning benefit. Give such
    /// record types a real `sort_key` before distribution-sorting them.
    pub fn sort<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &SpillNamer,
        input: &mut dyn Iterator<Item = R>,
        output: &str,
    ) -> Result<DistributionSortReport> {
        if self.config.memory_records == 0 {
            return Err(SortError::InvalidConfig(
                "distribution sort needs a memory budget of at least one record".into(),
            ));
        }
        if self.config.buckets < 2 {
            return Err(SortError::InvalidConfig(
                "distribution sort needs at least two buckets".into(),
            ));
        }
        let mut report = DistributionSortReport::default();
        let mut writer = RunWriter::<R>::create(device, output)?;

        // Buffer up to a memory's worth; if everything fits, sort directly.
        let mut head: Vec<R> = Vec::with_capacity(self.config.memory_records);
        head.extend(input.take(self.config.memory_records));
        if head.len() < self.config.memory_records {
            head.sort_unstable();
            report.records = head.len() as u64;
            report.leaf_buckets = 1;
            for r in &head {
                writer.push(r)?;
            }
            finish_output(device, writer, output)?;
            return Ok(report);
        }

        // Otherwise spill everything (the buffered head plus the rest of the
        // iterator) into first-level buckets. The key range of the buckets is
        // estimated from the buffered sample (the paper notes that choosing
        // bucket ranges is the distribution-sort analogue of choosing the
        // quicksort pivot); records falling outside the sampled range are
        // clamped into the edge buckets.
        let sample_lo = head.iter().map(SortableRecord::sort_key).min().unwrap_or(0);
        let sample_hi = head
            .iter()
            .map(SortableRecord::sort_key)
            .max()
            .unwrap_or(0)
            .saturating_add(1);
        let spilled = match self.partition(
            device,
            namer,
            &mut head.drain(..).chain(input),
            sample_lo,
            sample_hi,
            &mut report,
        ) {
            Ok(spilled) => spilled,
            Err(error) => {
                drop(writer);
                let _ = device.remove(output);
                return Err(error);
            }
        };
        report.records = spilled.iter().map(|b| b.records).sum();

        // Sort each bucket in key order and append to the output. On a
        // failure, remove the buckets not yet consumed and the partial
        // output, so a failed sort leaks no files.
        let mut buckets = spilled.into_iter();
        while let Some(bucket) = buckets.next() {
            if let Err(error) = self.sort_bucket(device, namer, bucket, &mut writer, 1, &mut report)
            {
                for leftover in buckets {
                    let _ = device.remove(&leftover.name);
                }
                drop(writer);
                let _ = device.remove(output);
                return Err(error);
            }
        }
        finish_output(device, writer, output)?;
        Ok(report)
    }

    /// Splits a record stream into `buckets` files by uniform key ranges
    /// within `[lo, hi]`. On `Err`, every bucket file this pass created is
    /// removed (best effort).
    fn partition<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &SpillNamer,
        input: &mut dyn Iterator<Item = R>,
        lo: u64,
        hi: u64,
        report: &mut DistributionSortReport,
    ) -> Result<Vec<Bucket>> {
        let mut created: Vec<String> = Vec::new();
        let result = self.partition_inner(device, namer, input, lo, hi, report, &mut created);
        if result.is_err() {
            for name in created {
                let _ = device.remove(&name);
            }
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn partition_inner<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &SpillNamer,
        input: &mut dyn Iterator<Item = R>,
        lo: u64,
        hi: u64,
        report: &mut DistributionSortReport,
        created: &mut Vec<String>,
    ) -> Result<Vec<Bucket>> {
        report.partition_passes += 1;
        let buckets = self.config.buckets as u64;
        let width = ((hi - lo) / buckets).max(1);
        let mut writers: Vec<(String, RunWriter<R>)> = Vec::with_capacity(buckets as usize);
        for _ in 0..buckets {
            let name = namer.next_name("bucket");
            let writer = RunWriter::<R>::create(device, &name)?;
            created.push(name.clone());
            writers.push((name, writer));
        }
        for record in input {
            let idx = (((record.sort_key().saturating_sub(lo)) / width).min(buckets - 1)) as usize;
            writers[idx].1.push(&record)?;
        }
        let mut out = Vec::with_capacity(buckets as usize);
        for (i, (name, writer)) in writers.into_iter().enumerate() {
            let records = writer.finish()?;
            let b_lo = lo + i as u64 * width;
            let b_hi = if i as u64 == buckets - 1 {
                hi
            } else {
                lo + (i as u64 + 1) * width
            };
            out.push(Bucket {
                name,
                records,
                lo: b_lo,
                hi: b_hi,
            });
        }
        Ok(out)
    }

    /// Sorts one bucket, recursing when it does not fit in memory.
    ///
    /// On `Err`, this bucket's file and every descendant file it created
    /// are removed (best effort), so a failed sort leaks no spill files at
    /// any recursion depth.
    fn sort_bucket<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &SpillNamer,
        bucket: Bucket,
        writer: &mut RunWriter<R>,
        depth: usize,
        report: &mut DistributionSortReport,
    ) -> Result<()> {
        let name = bucket.name.clone();
        let result = self.sort_bucket_inner(device, namer, bucket, writer, depth, report);
        if result.is_err() && device.exists(&name) {
            let _ = device.remove(&name);
        }
        result
    }

    fn sort_bucket_inner<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &SpillNamer,
        bucket: Bucket,
        writer: &mut RunWriter<R>,
        depth: usize,
        report: &mut DistributionSortReport,
    ) -> Result<()> {
        if bucket.records == 0 {
            device.remove(&bucket.name)?;
            return Ok(());
        }
        if bucket.records as usize <= self.config.memory_records
            || depth >= self.config.max_depth
            || bucket.hi <= bucket.lo + 1
        {
            let mut reader = RunReader::<R>::open(device, &bucket.name)?;
            let mut records = reader.read_all()?;
            records.sort_unstable();
            for r in &records {
                writer.push(r)?;
            }
            report.leaf_buckets += 1;
            device.remove(&bucket.name)?;
            return Ok(());
        }
        // Recursive partitioning of an oversized bucket.
        let reader = RunReader::<R>::open(device, &bucket.name)?;
        let mut failed = None;
        let mut iter = FallibleRecords {
            reader,
            error: &mut failed,
        };
        let children = self.partition(device, namer, &mut iter, bucket.lo, bucket.hi, report)?;
        if let Some(error) = failed {
            // The bucket could not be read back: remove the child files the
            // partitioning pass already created (the wrapper removes the
            // bucket itself).
            for child in &children {
                let _ = device.remove(&child.name);
            }
            return Err(error.into());
        }
        device.remove(&bucket.name)?;
        let mut children = children.into_iter();
        while let Some(child) = children.next() {
            if let Err(error) = self.sort_bucket(device, namer, child, writer, depth + 1, report) {
                // The failing child cleaned up after itself; remove its
                // not-yet-consumed siblings.
                for leftover in children {
                    let _ = device.remove(&leftover.name);
                }
                return Err(error);
            }
        }
        Ok(())
    }
}

/// Finishes the output run, removing the partial file when the final
/// header/flush write fails so an errored sort leaves nothing behind.
fn finish_output<D: Device, R: SortableRecord>(
    device: &D,
    writer: RunWriter<R>,
    output: &str,
) -> Result<()> {
    if let Err(error) = writer.finish() {
        let _ = device.remove(output);
        return Err(error.into());
    }
    Ok(())
}

#[derive(Debug, Clone)]
struct Bucket {
    name: String,
    records: u64,
    lo: u64,
    hi: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_generation::{RunCursor, RunHandle};
    use twrs_storage::ModelId;
    use twrs_storage::SimDevice;
    use twrs_workloads::{Distribution, DistributionKind, Record};

    fn sort_with(
        config: DistributionSortConfig,
        input: Vec<Record>,
    ) -> (Vec<Record>, DistributionSortReport) {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("ds");
        let sorter = DistributionSort::new(config);
        let mut iter = input.into_iter();
        let report = sorter.sort(&device, &namer, &mut iter, "out").unwrap();
        let mut cursor =
            RunCursor::<Record>::open(&device, &RunHandle::Forward("out".into())).unwrap();
        (cursor.read_all().unwrap(), report)
    }

    #[test]
    fn small_input_sorted_in_memory() {
        let input = Distribution::new(DistributionKind::RandomUniform, 500, 1).collect();
        let mut expected = input.clone();
        expected.sort_unstable();
        let (output, report) = sort_with(
            DistributionSortConfig {
                memory_records: 1_000,
                buckets: 8,
                max_depth: 4,
            },
            input,
        );
        assert_eq!(output, expected);
        assert_eq!(report.partition_passes, 0);
        assert_eq!(report.leaf_buckets, 1);
    }

    #[test]
    fn large_input_is_partitioned_and_sorted() {
        let input = Distribution::new(DistributionKind::RandomUniform, 20_000, 2).collect();
        let mut expected = input.clone();
        expected.sort_unstable();
        let (output, report) = sort_with(
            DistributionSortConfig {
                memory_records: 1_000,
                buckets: 8,
                max_depth: 6,
            },
            input,
        );
        assert_eq!(output, expected);
        assert!(report.partition_passes >= 1);
        assert!(report.leaf_buckets >= 8);
        assert_eq!(report.records, 20_000);
    }

    #[test]
    fn skewed_input_recurses() {
        // All keys clustered into a narrow band forces recursion.
        let input: Vec<Record> = (0..5_000u64)
            .map(|i| Record::new(1_000 + i % 50, i))
            .collect();
        let mut expected = input.clone();
        expected.sort_unstable();
        let (output, report) = sort_with(
            DistributionSortConfig {
                memory_records: 500,
                buckets: 4,
                max_depth: 8,
            },
            input,
        );
        assert_eq!(output, expected);
        assert!(
            report.partition_passes > 1,
            "expected recursive partitioning"
        );
    }

    #[test]
    fn empty_input() {
        let (output, report) = sort_with(DistributionSortConfig::default(), Vec::new());
        assert!(output.is_empty());
        assert_eq!(report.records, 0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("ds");
        let mut empty = std::iter::empty::<Record>();
        let no_memory = DistributionSort::new(DistributionSortConfig {
            memory_records: 0,
            buckets: 4,
            max_depth: 2,
        });
        assert!(matches!(
            no_memory.sort(&device, &namer, &mut empty, "o"),
            Err(SortError::InvalidConfig(_))
        ));
        let one_bucket = DistributionSort::new(DistributionSortConfig {
            memory_records: 10,
            buckets: 1,
            max_depth: 2,
        });
        let mut empty = std::iter::empty::<Record>();
        assert!(matches!(
            one_bucket.sort(&device, &namer, &mut empty, "o"),
            Err(SortError::InvalidConfig(_))
        ));
    }

    #[test]
    fn agrees_with_merge_based_sorter() {
        use crate::replacement_selection::ReplacementSelection;
        use crate::sorter::{ExternalSorter, SorterConfig};

        let input = Distribution::new(DistributionKind::MixedBalanced, 8_000, 11).collect();

        let (ds_output, _) = sort_with(
            DistributionSortConfig {
                memory_records: 400,
                buckets: 8,
                max_depth: 6,
            },
            input.clone(),
        );

        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut sorter =
            ExternalSorter::with_config(ReplacementSelection::new(400), SorterConfig::default());
        let mut iter = input.into_iter();
        sorter.sort_iter(&device, &mut iter, "merge_out").unwrap();
        let mut cursor =
            RunCursor::<Record>::open(&device, &RunHandle::Forward("merge_out".into())).unwrap();
        let merge_output = cursor.read_all().unwrap();

        assert_eq!(ds_output, merge_output);
    }
}
