//! Lazy sorted output: the final k-way merge suspended into an iterator.
//!
//! The classic sort pipeline ends with a merge pass that *writes* the fully
//! sorted run back to the device — a whole extra write pass even when the
//! caller only wants to iterate the sorted records once (top-k, merge-join,
//! dedup, bulk load). [`SortedStream`] removes that pass: after run
//! generation and the intermediate merge passes have reduced the run count
//! to at most the merge fan-in, the last merge step is *not* executed.
//! Instead its input cursors (or, on the parallel path, its background
//! prefetch threads) and the loser tree are packaged into an iterator that
//! performs the final merge incrementally, one record per
//! [`next()`](Iterator::next) call.
//!
//! The stream owns the sort's spill files. They are removed as soon as the
//! stream is fully consumed, explicitly [`close`](SortedStream::close)d, or
//! dropped — a half-consumed stream never leaks device space. The
//! [`report`](SortedStream::report) snapshot taken at suspension time
//! records the run-generation and intermediate-merge cost; its
//! `final_pass` is [`FinalPassKind::Streamed`] and its final-pass page
//! writes are zero, which is exactly the saving the bench suite's `sink`
//! axis measures.

use crate::error::{Result, SortError};
use crate::merge::kway::{BufferedCursor, MergeSource};
use crate::merge::loser_tree::LoserTree;
use crate::parallel::PrefetchSource;
use crate::sort_job::SortJobReport;
#[allow(unused_imports)] // rustdoc link
use crate::sorter::FinalPassKind;
use std::sync::atomic::{AtomicU64, Ordering};
use twrs_storage::SortableRecord;

/// Allocates a process-unique spill namespace for sorts that have no output
/// file name to derive one from (sink and stream sorts), so concurrent jobs
/// on one device never collide.
pub(crate) fn unique_namespace(prefix: &str) -> String {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    format!("{prefix}.{id:06}")
}

/// One leaf of a suspended final merge: a synchronous read-ahead cursor
/// (sequential pipeline) or the consumer end of a background prefetch
/// thread (parallel pipeline).
pub(crate) enum StreamSource<R: SortableRecord> {
    /// Synchronous cursor with read-ahead, as the sequential merger uses.
    Buffered(BufferedCursor<R>),
    /// Background prefetch thread, as the parallel merger uses.
    Prefetch(PrefetchSource<R>),
}

impl<R: SortableRecord> MergeSource<R> for StreamSource<R> {
    fn next_record(&mut self) -> Result<Option<R>> {
        match self {
            StreamSource::Buffered(source) => source.next_record(),
            StreamSource::Prefetch(source) => source.next_record(),
        }
    }
}

/// Cleanup action deferred until the stream is consumed, closed or dropped:
/// removes the sort's remaining spill files from the device.
type Cleanup = Box<dyn FnOnce() -> Result<()> + Send>;

/// A lazily merged sorted record stream.
///
/// Returned by `SortJob::stream_iter` / `stream_file_as` (and the engines'
/// `sort_iter_stream`). Yields every input record exactly once, in
/// ascending order — the same sequence `run_iter` would have written to its
/// output file — without ever writing that file. Errors surface as `Err`
/// items; after the first `Err` (and after normal exhaustion) the stream is
/// finished and its spill files are gone.
///
/// ```
/// use twrs_extsort::{ReplacementSelection, SortJob};
/// use twrs_storage::{ModelId, SimDevice};
///
/// let device = SimDevice::with_model(ModelId::Hdd7200);
/// let stream = SortJob::new(ReplacementSelection::new(100))
///     .on(&device)
///     .stream_iter((0..10_000u64).rev())
///     .expect("sort runs");
/// // Top-3 without a final output file ever touching the device:
/// let smallest: Vec<u64> = stream.take(3).collect::<Result<_, _>>().unwrap();
/// assert_eq!(smallest, vec![0, 1, 2]);
/// ```
pub struct SortedStream<R: SortableRecord> {
    sources: Vec<StreamSource<R>>,
    heads: Vec<Option<R>>,
    tree: LoserTree,
    report: SortJobReport,
    /// Records yielded so far; bounds `size_hint`.
    delivered: u64,
    /// Error from a source refill, parked so the record in hand could still
    /// be delivered first.
    pending_error: Option<SortError>,
    finished: bool,
    cleanup: Option<Cleanup>,
}

impl<R: SortableRecord> SortedStream<R> {
    /// Suspends a final merge over `sources` into a stream. `report` is the
    /// job report up to the suspension point; `cleanup` removes the sort's
    /// spill files and runs exactly once (consumption, close or drop).
    pub(crate) fn new(
        mut sources: Vec<StreamSource<R>>,
        report: SortJobReport,
        cleanup: Cleanup,
    ) -> Result<Self> {
        let heads: Vec<Option<R>> = sources
            .iter_mut()
            .map(|s| s.next_record())
            .collect::<Result<_>>()?;
        let tree = LoserTree::new(&heads);
        let finished = sources.is_empty();
        Ok(SortedStream {
            sources,
            heads,
            tree,
            report,
            delivered: 0,
            pending_error: None,
            finished,
            cleanup: Some(cleanup),
        })
    }

    /// The job report as of the moment the final merge was suspended: run
    /// generation and intermediate merge passes are fully accounted,
    /// `final_pass` is `Streamed`, and the final-pass page writes are zero
    /// (the stream never performs them).
    pub fn report(&self) -> &SortJobReport {
        &self.report
    }

    /// Total number of records the stream will yield when fully consumed.
    pub fn expected_records(&self) -> u64 {
        self.report.report.records
    }

    /// Terminates the stream early, removing its remaining spill files, and
    /// surfaces any cleanup error (dropping the stream cleans up too, but
    /// swallows errors).
    pub fn close(mut self) -> Result<()> {
        self.finished = true;
        self.release()
    }

    /// Joins the merge sources and runs the deferred spill cleanup;
    /// idempotent.
    fn release(&mut self) -> Result<()> {
        // Drop the sources first: prefetch threads disconnect and join, so
        // no background reader races the file removal below.
        self.sources.clear();
        match self.cleanup.take() {
            Some(cleanup) => cleanup(),
            None => Ok(()),
        }
    }
}

impl<R: SortableRecord> Iterator for SortedStream<R> {
    type Item = Result<R>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        if let Some(error) = self.pending_error.take() {
            self.finished = true;
            let _ = self.release();
            return Some(Err(error));
        }
        let winner = self.tree.winner();
        let Some(record) = self.heads[winner].take() else {
            // Every source exhausted: the merge is complete. Spill files
            // are removed right here, not at drop, so a fully drained
            // stream leaves the device clean immediately; a cleanup
            // failure surfaces as a final `Err` item.
            self.finished = true;
            return match self.release() {
                Ok(()) => None,
                Err(error) => Some(Err(error)),
            };
        };
        match self.sources[winner].next_record() {
            Ok(next) => {
                self.heads[winner] = next;
            }
            Err(error) => {
                // Deliver the record in hand; the error is the next item.
                self.pending_error = Some(error);
            }
        }
        self.tree.replay(&self.heads, winner);
        self.delivered += 1;
        Some(Ok(record))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.finished {
            (0, Some(0))
        } else {
            // The total is known up front; the +1 leaves room for a
            // trailing `Err` item (refill or cleanup failure). Lower bound
            // stays 0 because an error ends the stream early.
            let remaining = self.expected_records().saturating_sub(self.delivered) as usize;
            (0, Some(remaining + 1))
        }
    }
}

impl<R: SortableRecord> Drop for SortedStream<R> {
    fn drop(&mut self) {
        let _ = self.release();
    }
}

impl<R: SortableRecord> std::fmt::Debug for SortedStream<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SortedStream")
            .field("sources", &self.sources.len())
            .field("expected_records", &self.expected_records())
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}
