//! Cooperative cancellation for running sort jobs.
//!
//! A [`CancellationToken`] is a shared flag threaded from
//! [`JobHandle::cancel`](crate::service::JobHandle::cancel) through the
//! [`SortJob`](crate::sort_job::SortJob) execution spine into the phase
//! loops of both engines. The pipeline polls it at phase and page
//! boundaries — run generation checks it on every record pulled into the
//! selection heap, the merge scheduler between passes and every
//! [`CANCEL_CHECK_INTERVAL`] merged records — and surfaces a set flag as
//! [`SortError::Canceled`], which unwinds through the normal error path:
//! spill files are cleaned up, partial output removed, and the memory
//! lease released.
//!
//! Cancellation is *cooperative*: nothing is interrupted mid-page. A job
//! observes the flag at its next boundary, which bounds the latency between
//! `cancel()` and the job completing as `Canceled` to roughly one page of
//! I/O plus one heap refill.

use crate::error::{Result, SortError};
use crate::sync::lock_or_poison;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// How many merged records the inner k-way merge loop emits between
/// consecutive token checks (roughly one output page of small records).
pub const CANCEL_CHECK_INTERVAL: u64 = 256;

type Waker = Box<dyn Fn() + Send + Sync>;

struct TokenInner {
    canceled: AtomicBool,
    wakers: Mutex<Vec<Waker>>,
}

/// A shared cancellation flag plus wake handles.
///
/// Clones share the same flag; setting it via [`cancel`](Self::cancel) is
/// observed by every clone. Registered wakers let a blocked waiter (the
/// arbiter's lease queue) be nudged out of its condition-variable wait when
/// the flag flips.
#[derive(Clone)]
pub struct CancellationToken {
    inner: Arc<TokenInner>,
}

impl CancellationToken {
    /// A fresh, un-canceled token.
    pub fn new() -> Self {
        CancellationToken {
            inner: Arc::new(TokenInner {
                canceled: AtomicBool::new(false),
                wakers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Sets the flag and runs every registered waker. Idempotent: wakers
    /// run once, on the first call that flips the flag.
    pub fn cancel(&self) {
        if self.inner.canceled.swap(true, Ordering::SeqCst) {
            return;
        }
        let wakers = std::mem::take(&mut *lock_or_poison(&self.inner.wakers));
        for waker in wakers {
            waker();
        }
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_canceled(&self) -> bool {
        self.inner.canceled.load(Ordering::SeqCst)
    }

    /// Returns `Err(SortError::Canceled)` when the flag is set — the form
    /// the phase loops use so cancellation rides the normal error path
    /// (spill cleanup, lease release).
    pub fn check(&self) -> Result<()> {
        if self.is_canceled() {
            return Err(SortError::Canceled(
                "job canceled at a phase boundary".into(),
            ));
        }
        Ok(())
    }

    /// Registers a callback to run when the token is canceled. If the
    /// token is already canceled the callback runs immediately, so a
    /// registration can never miss the edge.
    pub fn on_cancel(&self, waker: impl Fn() + Send + Sync + 'static) {
        {
            let mut wakers = lock_or_poison(&self.inner.wakers);
            if !self.is_canceled() {
                wakers.push(Box::new(waker));
                return;
            }
        }
        waker();
    }

    /// Wraps `input` so it stops yielding records once the token is
    /// canceled. Run generation pulls every record through this gate, which
    /// makes the token effective at every heap refill; the caller must
    /// still [`check`](Self::check) afterwards so a truncated prefix can
    /// never masquerade as a completed sort.
    pub(crate) fn gate<'a, R>(&self, input: &'a mut dyn Iterator<Item = R>) -> GatedInput<'a, R> {
        GatedInput {
            cancel: self.clone(),
            inner: input,
        }
    }
}

impl Default for CancellationToken {
    fn default() -> Self {
        CancellationToken::new()
    }
}

impl fmt::Debug for CancellationToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancellationToken")
            .field("canceled", &self.is_canceled())
            .finish()
    }
}

/// Iterator adapter produced by [`CancellationToken::gate`].
pub(crate) struct GatedInput<'a, R> {
    cancel: CancellationToken,
    inner: &'a mut dyn Iterator<Item = R>,
}

impl<R> Iterator for GatedInput<'_, R> {
    type Item = R;

    fn next(&mut self) -> Option<R> {
        if self.cancel.is_canceled() {
            return None;
        }
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn clones_share_the_flag() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(!clone.is_canceled());
        assert!(token.check().is_ok());
        token.cancel();
        assert!(clone.is_canceled());
        assert!(matches!(clone.check(), Err(SortError::Canceled(_))));
    }

    #[test]
    fn wakers_fire_once_even_across_repeated_cancels() {
        let token = CancellationToken::new();
        let fired = Arc::new(AtomicUsize::new(0));
        {
            let fired = fired.clone();
            token.on_cancel(move || {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        token.cancel();
        token.cancel();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn late_registration_fires_immediately() {
        let token = CancellationToken::new();
        token.cancel();
        let fired = Arc::new(AtomicUsize::new(0));
        {
            let fired = fired.clone();
            token.on_cancel(move || {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn gated_input_stops_at_the_flag() {
        let token = CancellationToken::new();
        let mut source = 0..10_u64;
        let mut gated = token.gate(&mut source);
        assert_eq!(gated.next(), Some(0));
        assert_eq!(gated.next(), Some(1));
        token.cancel();
        assert_eq!(gated.next(), None);
    }
}
