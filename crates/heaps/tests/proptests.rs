//! Property-based tests for the heap structures.

use proptest::prelude::*;
use twrs_heaps::{heapsort, heapsort_by, BinaryHeap, DualHeap, HeapKind, HeapSide, RunRecord};

proptest! {
    /// Popping a min-heap yields the input in ascending order.
    #[test]
    fn min_heap_sorts(values in prop::collection::vec(any::<i64>(), 0..256)) {
        let mut heap = BinaryHeap::unbounded(HeapKind::Min);
        for &v in &values {
            heap.push(v).unwrap();
            prop_assert_eq!(heap.debug_validate(), None);
        }
        let drained = heap.drain_sorted();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(drained, expected);
    }

    /// Popping a max-heap yields the input in descending order.
    #[test]
    fn max_heap_sorts_descending(values in prop::collection::vec(any::<i64>(), 0..256)) {
        let heap = BinaryHeap::from_vec(HeapKind::Max, values.clone());
        prop_assert_eq!(heap.debug_validate(), None);
        let mut heap = heap;
        let drained = heap.drain_sorted();
        let mut expected = values;
        expected.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(drained, expected);
    }

    /// `replace_top` behaves like pop-then-push.
    #[test]
    fn replace_top_equivalent_to_pop_push(
        initial in prop::collection::vec(any::<i32>(), 1..128),
        replacement in any::<i32>(),
    ) {
        let mut a = BinaryHeap::from_vec(HeapKind::Min, initial.clone());
        let mut b = BinaryHeap::from_vec(HeapKind::Min, initial);
        let via_replace = a.replace_top(replacement);
        let via_pop = b.pop();
        b.push(replacement).unwrap();
        prop_assert_eq!(via_replace, via_pop);
        prop_assert_eq!(a.drain_sorted(), b.drain_sorted());
    }

    /// An arbitrary interleaving of pushes and pops never violates the heap
    /// property and the popped prefix is always consistent with a heap.
    #[test]
    fn heap_invariant_under_mixed_ops(ops in prop::collection::vec((any::<bool>(), any::<u16>()), 0..512)) {
        let mut heap = BinaryHeap::unbounded(HeapKind::Min);
        for (is_pop, value) in ops {
            if is_pop {
                heap.pop();
            } else {
                heap.push(value).unwrap();
            }
            prop_assert_eq!(heap.debug_validate(), None);
        }
    }

    /// The dual heap splits any input into an ascending stream and a
    /// descending stream that together contain every record.
    #[test]
    fn dual_heap_partitions_input(
        values in prop::collection::vec(any::<i32>(), 0..256),
        sides in prop::collection::vec(any::<bool>(), 0..256),
    ) {
        let n = values.len();
        let mut dual: DualHeap<i32> = DualHeap::new(n.max(1));
        for (i, &v) in values.iter().enumerate() {
            let side = if *sides.get(i).unwrap_or(&true) { HeapSide::Top } else { HeapSide::Bottom };
            dual.push(side, v).unwrap();
            prop_assert_eq!(dual.debug_validate(), None);
        }
        let mut ascending = Vec::new();
        while let Some(v) = dual.pop(HeapSide::Top) { ascending.push(v); }
        let mut descending = Vec::new();
        while let Some(v) = dual.pop(HeapSide::Bottom) { descending.push(v); }
        prop_assert!(ascending.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(descending.windows(2).all(|w| w[0] >= w[1]));
        let mut all: Vec<i32> = ascending.into_iter().chain(descending).collect();
        all.sort_unstable();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(all, expected);
    }

    /// Heapsort agrees with the standard library sort.
    #[test]
    fn heapsort_matches_std(values in prop::collection::vec(any::<i64>(), 0..512)) {
        let mut ours = values.clone();
        heapsort(&mut ours);
        let mut expected = values;
        expected.sort_unstable();
        prop_assert_eq!(ours, expected);
    }

    /// Heapsort with a reversed comparator agrees with a reversed std sort.
    #[test]
    fn heapsort_by_matches_std(values in prop::collection::vec(any::<i64>(), 0..512)) {
        let mut ours = values.clone();
        heapsort_by(&mut ours, |a, b| b.cmp(a));
        let mut expected = values;
        expected.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(ours, expected);
    }

    /// Run-tagged records always surface lower runs before higher runs in a
    /// min-heap, regardless of their values.
    #[test]
    fn run_records_respect_run_major_order(
        entries in prop::collection::vec((0u64..4, any::<i32>()), 1..256),
    ) {
        let mut heap = BinaryHeap::unbounded(HeapKind::Min);
        for &(run, value) in &entries {
            heap.push(RunRecord::new(value, run)).unwrap();
        }
        let drained = heap.drain_sorted();
        prop_assert!(drained.windows(2).all(|w| w[0].run <= w[1].run));
        prop_assert!(drained
            .windows(2)
            .all(|w| w[0].run < w[1].run || w[0].value <= w[1].value));
    }
}
