//! Array-backed binary heap with explicit `upheap`/`downheap` procedures.
//!
//! The implementation follows §3.1 of the paper: the heap is a complete
//! binary tree stored in a contiguous array where the node with index `i`
//! has its parent at `(i - 1) / 2` and its children at `2i + 1` and
//! `2i + 2`. Adding a record appends it at the end and bubbles it up
//! (*upheap*); popping the top replaces the root with the last element and
//! sinks it down (*downheap*). Both operations are `O(log n)`.
//!
//! Unlike `std::collections::BinaryHeap`, this heap:
//!
//! * can be bounded to a fixed capacity (replacement selection works with a
//!   fixed memory budget),
//! * can be either a min-heap or a max-heap at runtime ([`HeapKind`]),
//!   which is what lets the TopHeap and BottomHeap of 2WRS share code,
//! * exposes [`BinaryHeap::debug_validate`] so tests can check the heap
//!   property after arbitrary operation sequences.

use std::cmp::Ordering;
use std::fmt;

/// Whether the heap keeps the smallest (`Min`) or the largest (`Max`)
/// element at the root.
///
/// The paper's TopHeap is a min-heap producing an increasing output stream,
/// and the BottomHeap is a max-heap producing a decreasing output stream
/// (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeapKind {
    /// Root holds the minimum element; popping yields a non-decreasing
    /// sequence.
    Min,
    /// Root holds the maximum element; popping yields a non-increasing
    /// sequence.
    Max,
}

impl HeapKind {
    /// Returns `true` when `a` should be closer to the root than `b`.
    #[inline]
    pub fn before<T: Ord>(self, a: &T, b: &T) -> bool {
        match self {
            HeapKind::Min => a.cmp(b) == Ordering::Less,
            HeapKind::Max => a.cmp(b) == Ordering::Greater,
        }
    }

    /// The opposite heap kind.
    #[inline]
    pub fn opposite(self) -> HeapKind {
        match self {
            HeapKind::Min => HeapKind::Max,
            HeapKind::Max => HeapKind::Min,
        }
    }
}

/// A bounded, array-backed binary heap.
///
/// # Examples
///
/// ```
/// use twrs_heaps::{BinaryHeap, HeapKind};
///
/// let mut heap = BinaryHeap::with_capacity(HeapKind::Min, 8);
/// for x in [5, 1, 4, 2, 3] {
///     heap.push(x).unwrap();
/// }
/// assert_eq!(heap.peek(), Some(&1));
/// assert_eq!(heap.pop(), Some(1));
/// assert_eq!(heap.pop(), Some(2));
/// assert_eq!(heap.len(), 3);
/// ```
#[derive(Clone)]
pub struct BinaryHeap<T> {
    kind: HeapKind,
    data: Vec<T>,
    capacity: usize,
}

/// Error returned by [`BinaryHeap::push`] when the heap is already at its
/// fixed capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapFull;

impl fmt::Display for HeapFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "heap is at capacity")
    }
}

impl std::error::Error for HeapFull {}

impl<T: Ord> BinaryHeap<T> {
    /// Creates an empty heap of the given kind with a fixed capacity.
    ///
    /// The backing array is allocated once; the heap never reallocates.
    pub fn with_capacity(kind: HeapKind, capacity: usize) -> Self {
        BinaryHeap {
            kind,
            data: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Creates an unbounded heap of the given kind.
    pub fn unbounded(kind: HeapKind) -> Self {
        BinaryHeap {
            kind,
            data: Vec::new(),
            capacity: usize::MAX,
        }
    }

    /// Builds an unbounded heap from an existing vector in `O(n)` using
    /// Floyd's bottom-up heapify.
    pub fn from_vec(kind: HeapKind, data: Vec<T>) -> Self {
        let mut heap = BinaryHeap {
            kind,
            data,
            capacity: usize::MAX,
        };
        heap.heapify();
        heap
    }

    /// The heap kind (min or max).
    #[inline]
    pub fn kind(&self) -> HeapKind {
        self.kind
    }

    /// Number of records currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the heap stores no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Maximum number of records the heap may hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` when the heap is at its fixed capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.data.len() >= self.capacity
    }

    /// Returns a reference to the top record (minimum for a min-heap,
    /// maximum for a max-heap) without removing it.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.data.first()
    }

    /// Adds a record, restoring the heap property with the *upheap*
    /// procedure of §3.1.1.
    ///
    /// Returns [`HeapFull`] if the heap is at capacity; the record is handed
    /// back inside the error so the caller does not lose it.
    pub fn push(&mut self, value: T) -> Result<(), (HeapFull, T)> {
        if self.is_full() {
            return Err((HeapFull, value));
        }
        self.data.push(value);
        self.upheap(self.data.len() - 1);
        Ok(())
    }

    /// Removes and returns the top record, restoring the heap property with
    /// the *downheap* procedure of §3.1.1.
    pub fn pop(&mut self) -> Option<T> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let top = self.data.pop();
        if !self.data.is_empty() {
            self.downheap(0);
        }
        top
    }

    /// Pops the top record and pushes a replacement in a single pass.
    ///
    /// This is the inner-loop operation of replacement selection: the output
    /// record leaves the heap and the freshly read input record takes its
    /// place, so the heap size never changes. It costs a single `downheap`
    /// instead of a `pop` followed by a `push`.
    pub fn replace_top(&mut self, value: T) -> Option<T> {
        if self.data.is_empty() {
            self.data.push(value);
            return None;
        }
        let old = std::mem::replace(&mut self.data[0], value);
        self.downheap(0);
        Some(old)
    }

    /// Removes every record and returns them in heap-array order
    /// (not sorted).
    pub fn drain(&mut self) -> Vec<T> {
        std::mem::take(&mut self.data)
    }

    /// Removes every record and returns them in sorted output order
    /// (ascending for a min-heap, descending for a max-heap).
    pub fn drain_sorted(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.data.len());
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }

    /// Iterates over the stored records in unspecified (heap-array) order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Restores the heap property over the whole array (Floyd heapify).
    fn heapify(&mut self) {
        if self.data.len() < 2 {
            return;
        }
        for i in (0..self.data.len() / 2).rev() {
            self.downheap(i);
        }
    }

    /// Bubble the record at `idx` up until its parent orders before it.
    fn upheap(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.kind.before(&self.data[idx], &self.data[parent]) {
                self.data.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    /// Sink the record at `idx` down until both children order after it.
    fn downheap(&mut self, mut idx: usize) {
        let len = self.data.len();
        loop {
            let left = 2 * idx + 1;
            let right = 2 * idx + 2;
            let mut best = idx;
            if left < len && self.kind.before(&self.data[left], &self.data[best]) {
                best = left;
            }
            if right < len && self.kind.before(&self.data[right], &self.data[best]) {
                best = right;
            }
            if best == idx {
                break;
            }
            self.data.swap(idx, best);
            idx = best;
        }
    }

    /// Checks the heap property over the whole array.
    ///
    /// Intended for tests: returns the index of the first violating node, or
    /// `None` when the heap is valid.
    pub fn debug_validate(&self) -> Option<usize> {
        for i in 1..self.data.len() {
            let parent = (i - 1) / 2;
            if self.kind.before(&self.data[i], &self.data[parent]) {
                return Some(i);
            }
        }
        None
    }
}

impl<T: Ord + fmt::Debug> fmt::Debug for BinaryHeap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BinaryHeap")
            .field("kind", &self.kind)
            .field("len", &self.data.len())
            .field("capacity", &self.capacity)
            .field("data", &self.data)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_heap_pops_ascending() {
        let mut heap = BinaryHeap::with_capacity(HeapKind::Min, 16);
        for x in [9, 3, 7, 1, 8, 2, 6, 4, 5, 0] {
            heap.push(x).unwrap();
            assert_eq!(heap.debug_validate(), None);
        }
        let drained = heap.drain_sorted();
        assert_eq!(drained, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn max_heap_pops_descending() {
        let mut heap = BinaryHeap::with_capacity(HeapKind::Max, 16);
        for x in [9, 3, 7, 1, 8, 2, 6, 4, 5, 0] {
            heap.push(x).unwrap();
            assert_eq!(heap.debug_validate(), None);
        }
        let drained = heap.drain_sorted();
        assert_eq!(drained, vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn paper_figure_3_3_insertion_example() {
        // Figure 3.3: inserting 91 into the max heap {93, 88, 82, 66, 20, 42, 7}
        // bubbles it up past 66 and 88 but not past 93.
        let mut heap = BinaryHeap::from_vec(HeapKind::Max, vec![93, 88, 82, 66, 20, 42, 7]);
        assert_eq!(heap.debug_validate(), None);
        heap.push(91).unwrap();
        assert_eq!(heap.peek(), Some(&93));
        assert_eq!(heap.debug_validate(), None);
        // After the upheap the second level must contain 91 and 82.
        let level_two: Vec<i32> = heap.iter().skip(1).take(2).copied().collect();
        assert!(level_two.contains(&91));
        assert!(level_two.contains(&82));
    }

    #[test]
    fn paper_figure_3_4_deletion_example() {
        // Figure 3.4: removing the top of {93, 91, 82, 88, 20, 42, 7, 66}
        // leaves 91 at the root.
        let mut heap = BinaryHeap::from_vec(HeapKind::Max, vec![93, 91, 82, 88, 20, 42, 7, 66]);
        assert_eq!(heap.pop(), Some(93));
        assert_eq!(heap.peek(), Some(&91));
        assert_eq!(heap.debug_validate(), None);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut heap = BinaryHeap::with_capacity(HeapKind::Min, 2);
        heap.push(1).unwrap();
        heap.push(2).unwrap();
        let err = heap.push(3);
        assert!(matches!(err, Err((HeapFull, 3))));
        assert_eq!(heap.len(), 2);
    }

    #[test]
    fn replace_top_keeps_size_and_order() {
        let mut heap = BinaryHeap::from_vec(HeapKind::Min, vec![2, 5, 9, 7, 6]);
        let old = heap.replace_top(4);
        assert_eq!(old, Some(2));
        assert_eq!(heap.len(), 5);
        assert_eq!(heap.peek(), Some(&4));
        assert_eq!(heap.debug_validate(), None);
    }

    #[test]
    fn replace_top_on_empty_heap_inserts() {
        let mut heap: BinaryHeap<i32> = BinaryHeap::with_capacity(HeapKind::Min, 4);
        assert_eq!(heap.replace_top(3), None);
        assert_eq!(heap.peek(), Some(&3));
    }

    #[test]
    fn from_vec_heapifies() {
        let heap = BinaryHeap::from_vec(HeapKind::Min, vec![9, 8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(heap.peek(), Some(&1));
        assert_eq!(heap.debug_validate(), None);
    }

    #[test]
    fn duplicates_are_preserved() {
        let mut heap = BinaryHeap::with_capacity(HeapKind::Min, 8);
        for x in [3, 3, 1, 1, 2, 2] {
            heap.push(x).unwrap();
        }
        assert_eq!(heap.drain_sorted(), vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn unbounded_heap_grows() {
        let mut heap = BinaryHeap::unbounded(HeapKind::Max);
        for x in 0..1000 {
            heap.push(x).unwrap();
        }
        assert_eq!(heap.len(), 1000);
        assert_eq!(heap.peek(), Some(&999));
    }

    #[test]
    fn empty_heap_behaviour() {
        let mut heap: BinaryHeap<u64> = BinaryHeap::with_capacity(HeapKind::Min, 4);
        assert!(heap.is_empty());
        assert_eq!(heap.pop(), None);
        assert_eq!(heap.peek(), None);
        assert_eq!(heap.debug_validate(), None);
    }
}
