//! Heap data structures for replacement-selection style run generation.
//!
//! This crate provides the in-memory substrate of the paper *"Two-way
//! Replacement Selection"* (VLDB 2010):
//!
//! * [`BinaryHeap`] — a classic array-backed binary heap with explicit
//!   `upheap`/`downheap` procedures (paper §3.1), parameterised over the
//!   ordering so the same code serves as a min-heap (TopHeap) and a
//!   max-heap (BottomHeap).
//! * [`DualHeap`] — the paper's §4.1 structure: a TopHeap (min-heap) and a
//!   BottomHeap (max-heap) stored in **one fixed array**, growing toward
//!   each other so one heap can grow at the expense of the other without
//!   dynamic allocation.
//! * [`RunRecord`] — a record tagged with the run it belongs to; records
//!   marked for the *next* run order after every record of the *current*
//!   run (and symmetrically for the max heap), which is how both RS and
//!   2WRS keep next-run records at the bottom of the heap (§3.3).
//! * [`heapsort`](mod@heapsort) — the §3.2 internal sorting algorithm, used both as a
//!   pedagogical baseline and as the victim-buffer sorter fallback.
//!
//! The heaps are deliberately simple, allocation-free after construction and
//! fully safe; every operation is `O(log n)` and the structures expose
//! `debug_validate` hooks used by the test-suite property tests.
//!
//! Everything here is generic over any `Ord` payload: the sort pipeline
//! instantiates these structures with `RunRecord<R>` for every
//! `twrs_storage::SortableRecord` it sorts, so no heap code ever names a
//! concrete record type.

#![warn(missing_docs)]

pub mod binary_heap;
pub mod dual_heap;
pub mod heapsort;
pub mod run_record;

pub use binary_heap::{BinaryHeap, HeapKind};
pub use dual_heap::{DualHeap, HeapSide, NaturalOrder, TwoWayOrder};
pub use heapsort::{heapsort, heapsort_by};
pub use run_record::RunRecord;
