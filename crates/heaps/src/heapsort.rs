//! Heapsort (§3.2), the internal sorting algorithm replacement selection is
//! built on.
//!
//! The paper describes heapsort with a separate heap next to the input
//! array: every record is pushed into the heap and then popped back out in
//! order, giving the familiar `O(n log n)` bound. This module keeps that
//! formulation (it doubles as an executable description of §3.2) and is used
//! by the victim buffer and by tests as an independent sorting oracle.

use crate::{BinaryHeap, HeapKind};
use std::cmp::Ordering;

/// Sorts a slice ascending using heapsort with an auxiliary heap (§3.2).
///
/// # Examples
///
/// ```
/// let mut values = vec![5, 3, 9, 1, 4];
/// twrs_heaps::heapsort(&mut values);
/// assert_eq!(values, vec![1, 3, 4, 5, 9]);
/// ```
pub fn heapsort<T: Ord>(slice: &mut [T]) {
    heapsort_by(slice, T::cmp)
}

/// Sorts a slice with heapsort using a caller-supplied comparison.
///
/// The comparison defines the ascending order of the result, mirroring
/// [`slice::sort_by`].
pub fn heapsort_by<T, F>(slice: &mut [T], mut compare: F)
where
    F: FnMut(&T, &T) -> Ordering,
{
    let n = slice.len();
    if n < 2 {
        return;
    }
    // Build a max-heap (by `compare`) over the slice itself, then repeatedly
    // move the root to the back of the shrinking heap region.
    for i in (0..n / 2).rev() {
        sift_down(slice, i, n, &mut compare);
    }
    for end in (1..n).rev() {
        slice.swap(0, end);
        sift_down(slice, 0, end, &mut compare);
    }
}

/// Sinks the record at `root` within `slice[..end]` so the max-heap property
/// (under `compare`) holds again.
fn sift_down<T, F>(slice: &mut [T], mut root: usize, end: usize, compare: &mut F)
where
    F: FnMut(&T, &T) -> Ordering,
{
    loop {
        let left = 2 * root + 1;
        if left >= end {
            break;
        }
        let right = left + 1;
        let mut child = left;
        if right < end && compare(&slice[right], &slice[left]) == Ordering::Greater {
            child = right;
        }
        if compare(&slice[child], &slice[root]) == Ordering::Greater {
            slice.swap(root, child);
            root = child;
        } else {
            break;
        }
    }
}

/// Sorts a `Vec` by moving it through an auxiliary binary heap, exactly as
/// §3.2 describes (push everything, pop everything).
///
/// This is slower than [`heapsort`] because of the extra allocation but is a
/// literal transcription of the paper's algorithm, and serves as an oracle in
/// tests.
pub fn heapsort_via_heap<T: Ord>(values: Vec<T>) -> Vec<T> {
    let mut heap = BinaryHeap::from_vec(HeapKind::Min, values);
    heap.drain_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_integers() {
        let mut v = vec![5, 2, 9, 1, 7, 3, 8, 6, 4, 0];
        heapsort(&mut v);
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sorts_with_custom_comparator_descending() {
        let mut v = vec![5, 2, 9, 1, 7];
        heapsort_by(&mut v, |a, b| b.cmp(a));
        assert_eq!(v, vec![9, 7, 5, 2, 1]);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let mut empty: Vec<u32> = vec![];
        heapsort(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![42];
        heapsort(&mut one);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn handles_duplicates() {
        let mut v = vec![3, 1, 3, 1, 2, 2, 3];
        heapsort(&mut v);
        assert_eq!(v, vec![1, 1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn already_sorted_and_reverse_sorted() {
        let mut asc: Vec<u32> = (0..100).collect();
        heapsort(&mut asc);
        assert_eq!(asc, (0..100).collect::<Vec<_>>());
        let mut desc: Vec<u32> = (0..100).rev().collect();
        heapsort(&mut desc);
        assert_eq!(desc, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn via_heap_matches_std_sort() {
        let values = vec![17_i32, -4, 33, 0, 12, -4, 99, 5];
        let mut expected = values.clone();
        expected.sort();
        assert_eq!(heapsort_via_heap(values), expected);
    }

    #[test]
    fn matches_std_sort_on_medium_input() {
        // Deterministic pseudo-random data without pulling in `rand` here.
        let mut v: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(2654435761) % 997)
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        heapsort(&mut v);
        assert_eq!(v, expected);
    }
}
