//! Records tagged with the run they belong to.
//!
//! Replacement selection (§3.3) marks records that cannot join the current
//! run as belonging to the *next* run and keeps them at the bottom of the
//! heap by treating them as larger than every current-run record. Tagging
//! the record with its run number and ordering by `(run, value)` achieves
//! exactly that: the run number is the major sort key, so the heap only
//! surfaces next-run records once every current-run record has left.

use std::cmp::Ordering;

/// A value tagged with the run number it has been assigned to.
///
/// Ordering is lexicographic on `(run, value)`, which makes a min-heap of
/// `RunRecord`s behave like the paper's replacement-selection heap: records
/// marked for a later run sink below all records of the current run.
///
/// # Examples
///
/// ```
/// use twrs_heaps::RunRecord;
///
/// let current = RunRecord::new(10_u64, 0);
/// let next = RunRecord::new(1_u64, 1);
/// // The next-run record orders after the current-run record even though
/// // its value is smaller.
/// assert!(current < next);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunRecord<T> {
    /// The payload value (usually a sort key or a full record).
    pub value: T,
    /// The run this record has been assigned to.
    pub run: u64,
}

impl<T> RunRecord<T> {
    /// Tags `value` as belonging to run `run`.
    pub fn new(value: T, run: u64) -> Self {
        RunRecord { value, run }
    }

    /// Consumes the tag and returns the inner value.
    pub fn into_value(self) -> T {
        self.value
    }

    /// Maps the inner value, keeping the run tag.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> RunRecord<U> {
        RunRecord {
            value: f(self.value),
            run: self.run,
        }
    }
}

impl<T: Ord> PartialOrd for RunRecord<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for RunRecord<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.run
            .cmp(&other.run)
            .then_with(|| self.value.cmp(&other.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryHeap, HeapKind};

    #[test]
    fn run_is_the_major_key() {
        let a = RunRecord::new(100, 0);
        let b = RunRecord::new(1, 1);
        let c = RunRecord::new(50, 0);
        assert!(a < b);
        assert!(c < a);
        assert!(c < b);
    }

    #[test]
    fn equal_runs_compare_by_value() {
        let a = RunRecord::new(3, 2);
        let b = RunRecord::new(7, 2);
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn min_heap_surfaces_current_run_first() {
        let mut heap = BinaryHeap::with_capacity(HeapKind::Min, 8);
        heap.push(RunRecord::new(40, 0)).unwrap();
        heap.push(RunRecord::new(5, 1)).unwrap();
        heap.push(RunRecord::new(60, 0)).unwrap();
        heap.push(RunRecord::new(1, 1)).unwrap();

        assert_eq!(heap.pop(), Some(RunRecord::new(40, 0)));
        assert_eq!(heap.pop(), Some(RunRecord::new(60, 0)));
        // Only once the current run is exhausted do next-run records appear.
        assert_eq!(heap.pop(), Some(RunRecord::new(1, 1)));
        assert_eq!(heap.pop(), Some(RunRecord::new(5, 1)));
    }

    #[test]
    fn map_preserves_run() {
        let r = RunRecord::new(4_u32, 7).map(|v| v * 2);
        assert_eq!(r.value, 8);
        assert_eq!(r.run, 7);
    }
}
