//! The dual heap of two-way replacement selection (§4.1).
//!
//! 2WRS keeps two heaps in memory: the **TopHeap**, a min-heap whose pops
//! form an increasing stream, and the **BottomHeap**, a max-heap whose pops
//! form a decreasing stream. Because the share of memory each heap needs
//! changes with the input, the paper stores both in a *single fixed array*:
//! the TopHeap grows from one end with increasing indexes and the BottomHeap
//! from the other end with decreasing indexes (Figure 4.3), so either heap
//! can grow exactly when the other shrinks and no dynamic allocation is ever
//! required during run generation.
//!
//! [`DualHeap`] reproduces that layout. Both sides are implemented as
//! min-heaps under a side-specific ordering supplied by a [`TwoWayOrder`]
//! (the natural choice, [`NaturalOrder`], makes the bottom side a max-heap
//! over `T: Ord`); 2WRS itself supplies a run-aware ordering so next-run
//! records sink in both heaps.

use std::cmp::Ordering;
use std::fmt;

/// Identifies one of the two heaps stored in a [`DualHeap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeapSide {
    /// The min-heap producing the increasing output stream (stream 1).
    Top,
    /// The max-heap producing the decreasing output stream (stream 4).
    Bottom,
}

impl HeapSide {
    /// The other side.
    #[inline]
    pub fn opposite(self) -> HeapSide {
        match self {
            HeapSide::Top => HeapSide::Bottom,
            HeapSide::Bottom => HeapSide::Top,
        }
    }
}

/// Orderings for the two sides of a [`DualHeap`].
///
/// Both sides behave as min-heaps under their respective comparison: the
/// element that compares `Less` is closer to the root and is popped first.
/// For the bottom (decreasing-output) side the comparison is therefore
/// usually the *reverse* of the natural order.
pub trait TwoWayOrder<T> {
    /// Ordering used by the top heap; its root is the minimum under this
    /// comparison.
    fn cmp_top(&self, a: &T, b: &T) -> Ordering;

    /// Ordering used by the bottom heap; its root is the minimum under this
    /// comparison (i.e. the record to emit next in the decreasing stream).
    fn cmp_bottom(&self, a: &T, b: &T) -> Ordering;
}

/// The default [`TwoWayOrder`]: the top heap is a min-heap over `T: Ord`
/// and the bottom heap a max-heap over the same order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaturalOrder;

impl<T: Ord> TwoWayOrder<T> for NaturalOrder {
    #[inline]
    fn cmp_top(&self, a: &T, b: &T) -> Ordering {
        a.cmp(b)
    }

    #[inline]
    fn cmp_bottom(&self, a: &T, b: &T) -> Ordering {
        b.cmp(a)
    }
}

/// Two heaps sharing one fixed-capacity array, growing toward each other.
///
/// # Examples
///
/// ```
/// use twrs_heaps::{DualHeap, HeapSide};
///
/// let mut dual: DualHeap<u32> = DualHeap::new(8);
/// dual.push(HeapSide::Top, 50).unwrap();
/// dual.push(HeapSide::Top, 52).unwrap();
/// dual.push(HeapSide::Bottom, 40).unwrap();
/// dual.push(HeapSide::Bottom, 38).unwrap();
///
/// // The top side pops ascending, the bottom side pops descending.
/// assert_eq!(dual.peek(HeapSide::Top), Some(&50));
/// assert_eq!(dual.peek(HeapSide::Bottom), Some(&40));
/// assert_eq!(dual.pop(HeapSide::Bottom), Some(40));
/// assert_eq!(dual.pop(HeapSide::Top), Some(50));
/// ```
pub struct DualHeap<T, O = NaturalOrder> {
    /// The shared array. `slots[0..top_len]` is the TopHeap in standard
    /// array layout; `slots[capacity - bottom_len..capacity]` is the
    /// BottomHeap laid out from the back (its root lives at
    /// `capacity - 1`).
    slots: Vec<Option<T>>,
    top_len: usize,
    bottom_len: usize,
    order: O,
    /// Cumulative pops per side, used by the Useful heuristics.
    pops: [u64; 2],
}

/// Error returned when pushing into a full [`DualHeap`]; carries the value
/// back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualHeapFull<T>(pub T);

impl<T: fmt::Debug> fmt::Display for DualHeapFull<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dual heap is at capacity; rejected {:?}", self.0)
    }
}

impl<T: fmt::Debug> std::error::Error for DualHeapFull<T> {}

impl<T> DualHeap<T, NaturalOrder>
where
    T: Ord,
{
    /// Creates a dual heap with the natural ordering and the given total
    /// capacity shared by both sides.
    pub fn new(capacity: usize) -> Self {
        Self::with_order(capacity, NaturalOrder)
    }
}

impl<T, O: TwoWayOrder<T>> DualHeap<T, O> {
    /// Creates a dual heap with a custom two-way ordering.
    pub fn with_order(capacity: usize, order: O) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        DualHeap {
            slots,
            top_len: 0,
            bottom_len: 0,
            order,
            pops: [0, 0],
        }
    }

    /// Total capacity shared by the two heaps.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of records currently stored on `side`.
    #[inline]
    pub fn len_of(&self, side: HeapSide) -> usize {
        match side {
            HeapSide::Top => self.top_len,
            HeapSide::Bottom => self.bottom_len,
        }
    }

    /// Total number of records stored across both heaps.
    #[inline]
    pub fn len(&self) -> usize {
        self.top_len + self.bottom_len
    }

    /// `true` when both heaps are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the shared array is full.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity()
    }

    /// Free slots remaining in the shared array.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Number of records popped from `side` since construction (or the last
    /// [`DualHeap::reset_pop_counters`] call). Used by the *Useful*
    /// heuristics, which measure the usefulness of a heap as records output
    /// divided by size (§4.2).
    #[inline]
    pub fn pops_from(&self, side: HeapSide) -> u64 {
        self.pops[side_index(side)]
    }

    /// Resets the per-side pop counters (used at run boundaries).
    pub fn reset_pop_counters(&mut self) {
        self.pops = [0, 0];
    }

    /// Returns a reference to the root record of `side` without removing it.
    pub fn peek(&self, side: HeapSide) -> Option<&T> {
        match side {
            HeapSide::Top => {
                if self.top_len == 0 {
                    None
                } else {
                    self.slots[0].as_ref()
                }
            }
            HeapSide::Bottom => {
                if self.bottom_len == 0 {
                    None
                } else {
                    self.slots[self.capacity() - 1].as_ref()
                }
            }
        }
    }

    /// Pushes a record onto `side`.
    ///
    /// Fails with [`DualHeapFull`] when the *shared* array is full, i.e. the
    /// combined size of both heaps has reached the capacity, regardless of
    /// which side the record was destined for.
    pub fn push(&mut self, side: HeapSide, value: T) -> Result<(), DualHeapFull<T>> {
        if self.is_full() {
            return Err(DualHeapFull(value));
        }
        match side {
            HeapSide::Top => {
                let idx = self.top_len;
                self.slots[idx] = Some(value);
                self.top_len += 1;
                self.upheap(HeapSide::Top, idx);
            }
            HeapSide::Bottom => {
                let idx = self.bottom_len;
                let slot = self.bottom_slot(idx);
                self.slots[slot] = Some(value);
                self.bottom_len += 1;
                self.upheap(HeapSide::Bottom, idx);
            }
        }
        Ok(())
    }

    /// Pops the root record of `side`, shrinking that heap by one and
    /// freeing a slot either heap may subsequently use (Figure 4.4).
    pub fn pop(&mut self, side: HeapSide) -> Option<T> {
        let len = self.len_of(side);
        if len == 0 {
            return None;
        }
        self.pops[side_index(side)] += 1;
        let root_slot = self.heap_slot(side, 0);
        let last_slot = self.heap_slot(side, len - 1);
        self.slots.swap(root_slot, last_slot);
        let value = self.slots[last_slot].take();
        match side {
            HeapSide::Top => self.top_len -= 1,
            HeapSide::Bottom => self.bottom_len -= 1,
        }
        if self.len_of(side) > 1 {
            self.downheap(side, 0);
        }
        value
    }

    /// Drains every record from both heaps in unspecified order.
    pub fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for slot in self.slots.iter_mut() {
            if let Some(v) = slot.take() {
                out.push(v);
            }
        }
        self.top_len = 0;
        self.bottom_len = 0;
        out
    }

    /// Iterates over the records of `side` in unspecified (heap-array)
    /// order.
    pub fn iter_side(&self, side: HeapSide) -> impl Iterator<Item = &T> + '_ {
        let len = self.len_of(side);
        (0..len).filter_map(move |i| self.slots[self.heap_slot(side, i)].as_ref())
    }

    /// Compare the records at logical positions `a` and `b` of `side`.
    fn before(&self, side: HeapSide, a: usize, b: usize) -> bool {
        let (sa, sb) = (self.heap_slot(side, a), self.heap_slot(side, b));
        let (va, vb) = (
            // twrs-lint: allow(no-lib-panic) `a < len(side)` so the slot is occupied
            self.slots[sa].as_ref().expect("occupied heap slot"),
            // twrs-lint: allow(no-lib-panic) `b < len(side)` so the slot is occupied
            self.slots[sb].as_ref().expect("occupied heap slot"),
        );
        let ord = match side {
            HeapSide::Top => self.order.cmp_top(va, vb),
            HeapSide::Bottom => self.order.cmp_bottom(va, vb),
        };
        ord == Ordering::Less
    }

    /// Translate a logical heap index into a physical slot index.
    #[inline]
    fn heap_slot(&self, side: HeapSide, idx: usize) -> usize {
        match side {
            HeapSide::Top => idx,
            HeapSide::Bottom => self.bottom_slot(idx),
        }
    }

    /// Physical slot of the bottom heap's logical index `idx`: the bottom
    /// heap is laid out from the end of the array towards the front.
    #[inline]
    fn bottom_slot(&self, idx: usize) -> usize {
        self.capacity() - 1 - idx
    }

    fn swap_logical(&mut self, side: HeapSide, a: usize, b: usize) {
        let (sa, sb) = (self.heap_slot(side, a), self.heap_slot(side, b));
        self.slots.swap(sa, sb);
    }

    fn upheap(&mut self, side: HeapSide, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.before(side, idx, parent) {
                self.swap_logical(side, idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn downheap(&mut self, side: HeapSide, mut idx: usize) {
        let len = self.len_of(side);
        loop {
            let left = 2 * idx + 1;
            let right = 2 * idx + 2;
            let mut best = idx;
            if left < len && self.before(side, left, best) {
                best = left;
            }
            if right < len && self.before(side, right, best) {
                best = right;
            }
            if best == idx {
                break;
            }
            self.swap_logical(side, idx, best);
            idx = best;
        }
    }

    /// Validates both heap properties and the disjointness of the two
    /// regions. Returns a description of the first violation found, or
    /// `None` when the structure is consistent. Intended for tests.
    pub fn debug_validate(&self) -> Option<String> {
        if self.top_len + self.bottom_len > self.capacity() {
            return Some(format!(
                "overlap: top_len={} bottom_len={} capacity={}",
                self.top_len,
                self.bottom_len,
                self.capacity()
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            let in_top = i < self.top_len;
            let in_bottom = i >= self.capacity() - self.bottom_len;
            match (slot.is_some(), in_top || in_bottom) {
                (true, false) => return Some(format!("slot {i} occupied but outside both heaps")),
                (false, true) => return Some(format!("slot {i} empty but inside a heap")),
                _ => {}
            }
        }
        for side in [HeapSide::Top, HeapSide::Bottom] {
            for i in 1..self.len_of(side) {
                let parent = (i - 1) / 2;
                if self.before(side, i, parent) {
                    return Some(format!("heap property violated on {side:?} at index {i}"));
                }
            }
        }
        None
    }
}

#[inline]
fn side_index(side: HeapSide) -> usize {
    match side {
        HeapSide::Top => 0,
        HeapSide::Bottom => 1,
    }
}

impl<T: fmt::Debug, O> fmt::Debug for DualHeap<T, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DualHeap")
            .field("capacity", &self.slots.len())
            .field("top_len", &self.top_len)
            .field("bottom_len", &self.bottom_len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the two heaps of Figure 4.2 in a 14-slot shared array.
    fn paper_figure_4_3() -> DualHeap<u32> {
        let mut dual = DualHeap::new(14);
        // BottomHeap (max heap) of Figure 4.2: {33, 28, 32, 16, 20, 22, 4}.
        for v in [33, 28, 32, 16, 20, 22, 4] {
            dual.push(HeapSide::Bottom, v).unwrap();
        }
        // TopHeap (min heap) of Figure 4.2: {52, 54, 72, 75, 64, 81, 77}.
        for v in [52, 54, 72, 75, 64, 81, 77] {
            dual.push(HeapSide::Top, v).unwrap();
        }
        dual
    }

    #[test]
    fn figure_4_3_roots() {
        let dual = paper_figure_4_3();
        assert!(dual.is_full());
        assert_eq!(dual.peek(HeapSide::Bottom), Some(&33));
        assert_eq!(dual.peek(HeapSide::Top), Some(&52));
        assert_eq!(dual.debug_validate(), None);
    }

    #[test]
    fn figure_4_4_and_4_5_grow_at_the_expense_of_the_other() {
        // Removing the BottomHeap root (33) frees one slot...
        let mut dual = paper_figure_4_3();
        assert_eq!(dual.pop(HeapSide::Bottom), Some(33));
        assert_eq!(dual.len_of(HeapSide::Bottom), 6);
        assert_eq!(dual.free(), 1);
        assert_eq!(dual.debug_validate(), None);
        // ...which the TopHeap can then use (Figure 4.5: insert 53).
        dual.push(HeapSide::Top, 53).unwrap();
        assert_eq!(dual.len_of(HeapSide::Top), 8);
        assert!(dual.is_full());
        assert_eq!(dual.peek(HeapSide::Top), Some(&52));
        assert_eq!(dual.debug_validate(), None);
    }

    #[test]
    fn push_fails_only_when_shared_array_is_full() {
        let mut dual: DualHeap<u32> = DualHeap::new(4);
        dual.push(HeapSide::Top, 1).unwrap();
        dual.push(HeapSide::Top, 2).unwrap();
        dual.push(HeapSide::Bottom, 3).unwrap();
        dual.push(HeapSide::Bottom, 4).unwrap();
        let err = dual.push(HeapSide::Top, 5);
        assert_eq!(err, Err(DualHeapFull(5)));
        assert_eq!(dual.len(), 4);
    }

    #[test]
    fn top_side_pops_ascending_bottom_side_descending() {
        let mut dual: DualHeap<i64> = DualHeap::new(32);
        let values = [14, 3, 99, -7, 42, 0, 23, 8];
        for &v in &values {
            dual.push(HeapSide::Top, v).unwrap();
            dual.push(HeapSide::Bottom, v).unwrap();
        }
        let mut ascending = Vec::new();
        while let Some(v) = dual.pop(HeapSide::Top) {
            ascending.push(v);
        }
        let mut descending = Vec::new();
        while let Some(v) = dual.pop(HeapSide::Bottom) {
            descending.push(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        assert_eq!(ascending, sorted);
        sorted.reverse();
        assert_eq!(descending, sorted);
    }

    #[test]
    fn one_sided_use_is_equivalent_to_a_single_heap() {
        // When the TopHeap occupies the whole array and the BottomHeap stays
        // empty, the structure degenerates to plain replacement selection
        // (§4.1 "If the TopHeap grows to occupy the whole memory ... the
        // algorithm is equivalent to RS").
        let mut dual: DualHeap<u32> = DualHeap::new(16);
        for v in [9, 1, 8, 2, 7, 3, 6, 4, 5] {
            dual.push(HeapSide::Top, v).unwrap();
        }
        assert_eq!(dual.len_of(HeapSide::Bottom), 0);
        let mut out = Vec::new();
        while let Some(v) = dual.pop(HeapSide::Top) {
            out.push(v);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn pop_counters_track_usefulness_inputs() {
        let mut dual: DualHeap<u32> = DualHeap::new(8);
        dual.push(HeapSide::Top, 1).unwrap();
        dual.push(HeapSide::Top, 2).unwrap();
        dual.push(HeapSide::Bottom, 3).unwrap();
        dual.pop(HeapSide::Top);
        dual.pop(HeapSide::Top);
        dual.pop(HeapSide::Bottom);
        assert_eq!(dual.pops_from(HeapSide::Top), 2);
        assert_eq!(dual.pops_from(HeapSide::Bottom), 1);
        dual.reset_pop_counters();
        assert_eq!(dual.pops_from(HeapSide::Top), 0);
    }

    #[test]
    fn drain_empties_both_sides() {
        let mut dual = paper_figure_4_3();
        let all = dual.drain();
        assert_eq!(all.len(), 14);
        assert!(dual.is_empty());
        assert_eq!(dual.debug_validate(), None);
    }

    #[test]
    fn empty_heap_edge_cases() {
        let mut dual: DualHeap<u32> = DualHeap::new(0);
        assert!(dual.is_full());
        assert!(dual.is_empty());
        assert_eq!(dual.pop(HeapSide::Top), None);
        assert_eq!(dual.pop(HeapSide::Bottom), None);
        assert_eq!(dual.push(HeapSide::Top, 1), Err(DualHeapFull(1)));
    }

    #[test]
    fn custom_order_is_respected() {
        /// Orders both sides by the value modulo 10.
        struct Mod10;
        impl TwoWayOrder<u32> for Mod10 {
            fn cmp_top(&self, a: &u32, b: &u32) -> Ordering {
                (a % 10).cmp(&(b % 10))
            }
            fn cmp_bottom(&self, a: &u32, b: &u32) -> Ordering {
                (b % 10).cmp(&(a % 10))
            }
        }
        let mut dual = DualHeap::with_order(8, Mod10);
        for v in [21, 13, 47, 95] {
            dual.push(HeapSide::Top, v).unwrap();
        }
        assert_eq!(dual.pop(HeapSide::Top), Some(21));
        assert_eq!(dual.pop(HeapSide::Top), Some(13));
        assert_eq!(dual.pop(HeapSide::Top), Some(95));
        assert_eq!(dual.pop(HeapSide::Top), Some(47));
    }

    #[test]
    fn iter_side_visits_only_that_side() {
        let dual = paper_figure_4_3();
        let top: Vec<u32> = dual.iter_side(HeapSide::Top).copied().collect();
        let bottom: Vec<u32> = dual.iter_side(HeapSide::Bottom).copied().collect();
        assert_eq!(top.len(), 7);
        assert_eq!(bottom.len(), 7);
        assert!(top.iter().all(|v| *v >= 52));
        assert!(bottom.iter().all(|v| *v <= 33));
    }
}
