//! The scenario-matrix bench suite binary.
//!
//! Lives in the facade package so `cargo run --release --bin bench_suite`
//! works from the workspace root; the whole implementation — matrix,
//! runner, JSON report and baseline gate — is `twrs_bench::suite` (see its
//! module docs and `bench_suite --help` for usage).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match twrs_bench::suite::cli::run(&args) {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("bench_suite: {message}");
            std::process::exit(1);
        }
    }
}
