//! Facade crate for the *Two-way Replacement Selection* (VLDB 2010)
//! reproduction.
//!
//! The implementation lives in the workspace member crates; this crate
//! re-exports them under stable names so applications can depend on a single
//! crate, and hosts the repository-level examples and cross-crate
//! integration tests.
//!
//! * [`heaps`] — binary heap, shared dual-heap array, heapsort.
//! * [`storage`] — page devices (real and simulated), run files, the
//!   Appendix A reverse-record file format, I/O accounting and the
//!   [`SortableRecord`](storage::SortableRecord) trait every record type
//!   sorted by the pipeline implements.
//! * [`workloads`] — the default paper record and the six evaluation input
//!   distributions.
//! * [`extsort`] — run-generation trait and baselines (classic replacement
//!   selection, Load-Sort-Store), k-way and polyphase merging, distribution
//!   sort, the sequential and parallel external sorters, and the
//!   [`SortJob`](extsort::SortJob) builder that fronts them all.
//! * [`core`] — two-way replacement selection itself (the paper's
//!   contribution).
//! * [`analysis`] — ANOVA, the design-of-experiments runner, the snowplow
//!   model of RS and the closed-form run-length theory.
//!
//! # Quick start
//!
//! One builder drives the whole pipeline. Pick a run-generation algorithm,
//! bind a device, and run:
//!
//! ```
//! use two_way_replacement_selection::prelude::*;
//!
//! // An in-memory simulated disk and a reverse-sorted input — the worst
//! // case of classic replacement selection.
//! let device = SimDevice::with_model(ModelId::Hdd7200);
//! let input = Distribution::new(DistributionKind::ReverseSorted, 50_000, 7);
//!
//! let twrs = TwoWayReplacementSelection::new(TwrsConfig::recommended(1_000));
//! let report = SortJob::new(twrs)
//!     .on(&device)
//!     .verify(true)
//!     .run_iter(input.records(), "sorted")
//!     .expect("sort succeeds");
//!
//! assert_eq!(report.report.records, 50_000);
//! // Theorem 4: a single run, where RS would have produced 50.
//! assert_eq!(report.report.num_runs, 1);
//! ```
//!
//! # Going parallel
//!
//! The thread count is the only thing that changes; `threads(1)` (the
//! default) runs the sequential pipeline, anything larger shards run
//! generation over worker threads, moves spill writes to dedicated writer
//! threads and prefetches every merge input in the background. The *total*
//! memory budget is unchanged — each shard's generator gets
//! `memory / threads` records — and the sorted output is **byte-identical**
//! across thread counts:
//!
//! ```
//! use two_way_replacement_selection::prelude::*;
//!
//! let device = SimDevice::with_model(ModelId::Hdd7200);
//! let input = Distribution::new(DistributionKind::MixedBalanced, 20_000, 7);
//!
//! let twrs = TwoWayReplacementSelection::new(TwrsConfig::recommended(1_000));
//! let report = SortJob::new(twrs)
//!     .on(&device)
//!     .threads(4)
//!     .verify(true)
//!     .run_iter(input.records(), "sorted")
//!     .expect("sort succeeds");
//!
//! assert_eq!(report.report.records, 20_000);
//! assert_eq!(report.shards.as_ref().map(Vec::len), Some(4));
//! // Aggregated I/O counters reconcile with the per-shard sums.
//! assert!(report.io_is_consistent());
//! ```
//!
//! # Bring your own record type
//!
//! Every layer of the pipeline is generic over
//! [`SortableRecord`](storage::SortableRecord): a fixed-size serialization,
//! a total order, and an optional cached `u64` key projection that feeds the
//! 2WRS heuristics. The paper's `Record` (64-bit key + 64-bit payload) is
//! just the default. A 32-byte event record with an 8-byte string-prefix
//! key sorts through the exact same machinery:
//!
//! ```
//! use two_way_replacement_selection::prelude::*;
//! use two_way_replacement_selection::storage::{FixedSizeRecord, SortableRecord};
//!
//! #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
//! struct UserEvent {
//!     /// First 8 bytes of the user id; lexicographic order.
//!     prefix: [u8; 8],
//!     timestamp: u64,
//!     payload: [u8; 16],
//! }
//!
//! impl FixedSizeRecord for UserEvent {
//!     const SIZE: usize = 32;
//!
//!     fn write_to(&self, buf: &mut [u8]) {
//!         buf[0..8].copy_from_slice(&self.prefix);
//!         buf[8..16].copy_from_slice(&self.timestamp.to_le_bytes());
//!         buf[16..32].copy_from_slice(&self.payload);
//!     }
//!
//!     fn read_from(buf: &[u8]) -> Self {
//!         UserEvent {
//!             prefix: buf[0..8].try_into().expect("8 bytes"),
//!             timestamp: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
//!             payload: buf[16..32].try_into().expect("16 bytes"),
//!         }
//!     }
//! }
//!
//! impl SortableRecord for UserEvent {
//!     // The cached-key hook: a u64 projection of the leading sort key,
//!     // monotone with respect to Ord, used by the 2WRS heuristics.
//!     fn sort_key(&self) -> u64 {
//!         u64::from_be_bytes(self.prefix)
//!     }
//! }
//!
//! let device = SimDevice::with_model(ModelId::Hdd7200);
//! let events = (0..5_000u64).rev().map(|i| UserEvent {
//!     prefix: (i % 257 * 1_000_003).to_be_bytes(),
//!     timestamp: i,
//!     payload: [0; 16],
//! });
//! let twrs = TwoWayReplacementSelection::new(TwrsConfig::recommended(500));
//! let report = SortJob::new(twrs)
//!     .on(&device)
//!     .verify(true)
//!     .run_iter(events, "events-sorted")
//!     .expect("sort succeeds");
//! assert_eq!(report.report.records, 5_000);
//! ```
//!
//! # Streaming consumers
//!
//! `run_iter` always pays one full write pass for the final output file.
//! When the caller only wants to *iterate* the sorted records once — top-k,
//! merge-join, dedup, a bulk load into another system — that pass is pure
//! waste. Two alternatives remove it:
//!
//! * [`SortJob::stream_iter`](extsort::BoundSortJob::stream_iter) (and
//!   `stream_file` / `stream_file_as` for materialised datasets) returns a
//!   lazy [`SortedStream`]: run generation and the
//!   intermediate merge passes run eagerly, but the final k-way merge is
//!   suspended and performed on `next()`. No output file is ever written —
//!   the stream's report pins `final_pass_pages_written == 0`. The stream
//!   owns the sort's spill files and removes them when it is consumed,
//!   closed or dropped, so even a `take(k)` that abandons the stream early
//!   leaves the device clean.
//! * [`SortJob::sink_iter`](extsort::BoundSortJob::sink_iter) drains the
//!   final merge into any [`RecordSink`](extsort::RecordSink): a
//!   [`VecSink`](extsort::VecSink), a [`CallbackSink`](extsort::CallbackSink),
//!   a bounded [`ChannelSink`](extsort::ChannelSink) feeding a consumer
//!   thread, or a [`FileSink`](extsort::FileSink) (which is exactly what
//!   `run_iter` wraps).
//!
//! Top-k without a final write pass:
//!
//! ```
//! use two_way_replacement_selection::prelude::*;
//!
//! let device = SimDevice::with_model(ModelId::Hdd7200);
//! let input = Distribution::new(DistributionKind::RandomUniform, 20_000, 3);
//!
//! let stream = SortJob::new(ReplacementSelection::new(500))
//!     .on(&device)
//!     .threads(2)
//!     .stream_iter(input.records())
//!     .expect("sort runs");
//! assert_eq!(stream.report().final_pass, FinalPassKind::Streamed);
//! assert_eq!(stream.report().final_pass_pages_written(), 0);
//!
//! let top_10: Vec<Record> = stream.take(10).collect::<Result<_, _>>().unwrap();
//! assert!(top_10.windows(2).all(|w| w[0] <= w[1]));
//! // The abandoned stream cleaned its spill files up on drop.
//! assert!(device.list().is_empty());
//! ```
//!
//! A merge-join over two independently sorted streams works the same way —
//! see `examples/merge_join.rs`; `examples/top_k.rs` measures the pages the
//! stream saves against `run_iter`.
//!
//! # Many jobs, one budget: the sort service
//!
//! Every blocking entry point above runs *one* job with the memory its
//! generator asks for. A [`SortService`](extsort::SortService) runs a
//! *stream* of jobs from many tenants under one global memory budget:
//! [`submit`](extsort::SortService::submit) returns a
//! [`JobHandle`](extsort::JobHandle) immediately (with `wait`,
//! `try_status` and `cancel`), workers pick jobs up in per-tenant
//! round-robin order, and a global
//! [`MemoryArbiter`](extsort::MemoryArbiter) re-leases each job's budget
//! at admission so `sum(per-job budgets) <= global` holds at every
//! rebalance point. Submitted jobs and the blocking `run_*`/`sink_*`/
//! `stream_*` calls funnel through the same internal execution spine, so a
//! service job's output is byte-identical to the same job run directly.
//!
//! Cancellation is cooperative preemption: `cancel()` sets a
//! [`CancellationToken`](extsort::CancellationToken) the pipeline polls at
//! phase and page boundaries, so even a *running* job stops promptly,
//! deletes its spill files, returns its whole lease and completes
//! `Canceled`. Tenants can be weighted with
//! [`ServiceConfig::tenant_priority`](extsort::ServiceConfig::tenant_priority):
//! a [`Priority`](extsort::Priority) weight scales both the tenant's share
//! of queue turns and its per-job memory cap under either grant policy.
//!
//! ```
//! use two_way_replacement_selection::prelude::*;
//!
//! let device = SimDevice::with_model(ModelId::Hdd7200);
//! let service = SortService::new(ServiceConfig::new(300).workers(2)).unwrap();
//! let handles: Vec<JobHandle> = (0..4)
//!     .map(|i| {
//!         let input = Distribution::new(DistributionKind::RandomUniform, 2_000, i);
//!         let job = SortJob::new(ReplacementSelection::new(200)).on(&device);
//!         service
//!             .submit(format!("tenant-{}", i % 2), job, input.records(), format!("out-{i}"))
//!             .unwrap()
//!     })
//!     .collect();
//! for handle in handles {
//!     let done = handle.wait().unwrap();
//!     assert_eq!(done.report.report.records, 2_000);
//!     assert!(done.granted_memory <= 300);
//! }
//! let report = service.shutdown();
//! assert_eq!(report.jobs_completed, 4);
//! assert!(report.max_leased <= report.global_memory_records);
//! ```
//!
//! # Migrating from the pre-builder entry points
//!
//! | before                                                   | after                                                        |
//! |----------------------------------------------------------|--------------------------------------------------------------|
//! | `ExternalSorter::new(g).sort_iter(&d, &mut it, "out")`   | `SortJob::new(g).on(&d).run_iter(it, "out")`                 |
//! | `ExternalSorter::with_config(g, cfg).sort_iter(…)`       | `SortJob::new(g).config(cfg).on(&d).run_iter(…)`             |
//! | `ParallelExternalSorter::new(g).sort_iter(…)`            | `SortJob::new(g).on(&d).threads(n).run_iter(…)`              |
//! | `sorter.sort_file(&d, "in", "out")`                      | `SortJob::new(g).on(&d).run_file("in", "out")`¹              |
//! | `RunCursor::open(…)` (implicitly `Record`)               | `RecordRunCursor::open(…)` or `RunCursor::<R>::open(…)`      |
//! | `run_iter(it, "out")` + `RecordRunCursor` scan of `"out"` | `stream_iter(it)` — same records, no `"out"` file, no final write pass |
//! | `run_iter(it, "out")` + custom post-processing of `"out"` | `sink_iter(it, &mut sink)` with a [`RecordSink`](extsort::RecordSink) |
//! | a loop of blocking `run_iter` calls over many datasets    | `SortService::submit(tenant, job, input, output)` per dataset, then `JobHandle::wait` — same outputs, jobs overlap under the global budget |
//! | hand-rolled worker threads + per-job memory bookkeeping   | [`SortService`](extsort::SortService) with a [`MemoryArbiter`](extsort::MemoryArbiter); the arbiter enforces `sum(leases) <= global` at every rebalance |
//! | killing a worker thread to abandon a sort                 | `JobHandle::cancel()` — the running job observes its [`CancellationToken`](extsort::CancellationToken) at the next phase/page boundary, deletes its spill files, returns its lease and completes `Canceled` |
//! | a dedicated "high-priority" service instance per tenant tier | one service with [`ServiceConfig::tenant_priority`](extsort::ServiceConfig::tenant_priority)`("gold", `[`Priority::with_weight`](extsort::Priority::with_weight)`(3))` — weighted queue turns and memory caps, one global budget |
//! | `SimDevice::new()` / `SimDevice::with_config(ps, m)`      | `SimDevice::with_model(`[`ModelId`](storage::ModelId)`::Hdd7200)` / `SimDevice::custom(ps, m)` — `m` can be a catalog [`ModelId`](storage::ModelId), a raw [`DiskModel`](storage::DiskModel), or [`storage::custom`]`(name, params)` |
//! | a hard-wired device constructor in CLI/bench plumbing     | parse a [`DeviceSpec`](storage::DeviceSpec) (`"sim:nvme"`, `"real:/path:8192"`) and [`build`](storage::DeviceSpec::build) it — the returned [`AnyDevice`](storage::AnyDevice) plugs into every job/service entry point |
//!
//! ¹ `run_file` (and the `sort_file` method on the old sorters) is provided
//! for the default [`Record`] by the [`RecordSortExt`]
//! and [`RecordJobExt`] extension traits in the [`prelude`]; for any other
//! record type use `run_file_as::<R>` / `sort_file_as::<_, R>`, since a
//! file name cannot reveal its record type. The old `ExternalSorter` /
//! `ParallelExternalSorter` constructors keep working (they are what the
//! builder drives) — only the `new` constructors are deprecated in favour
//! of the builder; `with_config` remains the power-user escape hatch.

#![warn(missing_docs)]

pub use twrs_analysis as analysis;
pub use twrs_core as core;
pub use twrs_extsort as extsort;
pub use twrs_heaps as heaps;
pub use twrs_storage as storage;
pub use twrs_workloads as workloads;

use extsort::{
    BoundSortJob, Device, ParallelSortReport, Result, RunGenerator, ShardableGenerator,
    SortJobReport, SortReport, SortedStream,
};
use workloads::Record;

/// Cursor over runs of the default paper [`Record`] —
/// the pre-redesign `RunCursor`, which was not generic.
pub type RecordRunCursor = extsort::RunCursor<Record>;

/// Reader over datasets of the default paper [`Record`].
pub type RecordRunReader = storage::RunReader<Record>;

/// Record-typed `sort_file` for the two sorter engines, specialised to the
/// default paper [`Record`].
///
/// The generic engines expose `sort_file_as::<_, R>` because a file name
/// cannot reveal its record type; this extension trait restores the
/// historical `sort_file` signature for the default record. It is exported
/// by the [`prelude`].
pub trait RecordSortExt {
    /// The engine's report type ([`SortReport`] or [`ParallelSortReport`]).
    type Report;

    /// Sorts a materialised dataset of default records into the forward
    /// run file `output`. Corrupt input surfaces as an error, not a panic.
    fn sort_file<D: Device>(
        &mut self,
        device: &D,
        input: &str,
        output: &str,
    ) -> Result<Self::Report>;
}

impl<G: RunGenerator> RecordSortExt for extsort::ExternalSorter<G> {
    type Report = SortReport;

    fn sort_file<D: Device>(
        &mut self,
        device: &D,
        input: &str,
        output: &str,
    ) -> Result<SortReport> {
        self.sort_file_as::<D, Record>(device, input, output)
    }
}

impl<G: ShardableGenerator> RecordSortExt for extsort::ParallelExternalSorter<G> {
    type Report = ParallelSortReport;

    fn sort_file<D: Device>(
        &mut self,
        device: &D,
        input: &str,
        output: &str,
    ) -> Result<ParallelSortReport> {
        self.sort_file_as::<D, Record>(device, input, output)
    }
}

/// Record-typed `run_file` and `stream_file` for the
/// [`SortJob`](extsort::SortJob) builder, specialised to the default paper
/// [`Record`].
///
/// Exported by the [`prelude`]; for other record types use
/// `run_file_as::<R>` / `stream_file_as::<R>`.
pub trait RecordJobExt {
    /// Sorts a materialised dataset of default records into the forward
    /// run file `output` on the job's device.
    fn run_file(self, input: &str, output: &str) -> Result<SortJobReport>;

    /// Sorts a materialised dataset of default records into a lazy
    /// [`SortedStream`] — same record sequence as
    /// [`run_file`](RecordJobExt::run_file)'s output file, but merged on
    /// read with zero final-pass write I/O.
    fn stream_file(self, input: &str) -> Result<SortedStream<Record>>;
}

impl<G: ShardableGenerator, D: Device> RecordJobExt for BoundSortJob<G, D> {
    fn run_file(self, input: &str, output: &str) -> Result<SortJobReport> {
        self.run_file_as::<Record>(input, output)
    }

    fn stream_file(self, input: &str) -> Result<SortedStream<Record>> {
        self.stream_file_as::<Record>(input)
    }
}

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use crate::{RecordJobExt, RecordRunCursor, RecordRunReader, RecordSortExt};
    pub use twrs_core::{
        BufferSetup, InputHeuristic, OutputHeuristic, TwoWayReplacementSelection, TwrsConfig,
    };
    pub use twrs_extsort::{
        BoundSortJob, BudgetedGenerator, CallbackSink, CancellationToken, ChannelSink,
        CompletedJob, ExternalSorter, FileSink, FinalPassKind, GrantPolicy, JobHandle, JobStatus,
        LoadSortStore, MergeConfig, ParallelExternalSorter, ParallelSortReport,
        ParallelSorterConfig, Priority, RecordSink, ReplacementSelection, RunCursor, RunGenerator,
        RunHandle, ServiceConfig, ServiceReport, ShardableGenerator, SortJob, SortJobReport,
        SortReport, SortService, SortedStream, SorterConfig, VecSink,
    };
    pub use twrs_storage::{
        AnyDevice, DeviceModel, DeviceSpec, DirectIoStatus, FileDevice, ModelId, RealFileDevice,
        ScopedDevice, SimDevice, SortableRecord, SpillNamer, StorageDevice, StripePolicy,
        StripedDevice,
    };
    pub use twrs_workloads::{ArrivalTrace, Distribution, DistributionKind, JobArrival, Record};
}
