//! Facade crate for the *Two-way Replacement Selection* (VLDB 2010)
//! reproduction.
//!
//! The implementation lives in the workspace member crates; this crate
//! re-exports them under stable names so applications can depend on a single
//! crate, and hosts the repository-level examples and cross-crate
//! integration tests.
//!
//! * [`heaps`] — binary heap, shared dual-heap array, heapsort.
//! * [`storage`] — page devices (real and simulated), run files, the
//!   Appendix A reverse-record file format and I/O accounting.
//! * [`workloads`] — the record type and the six evaluation input
//!   distributions.
//! * [`extsort`] — run-generation trait and baselines (classic replacement
//!   selection, Load-Sort-Store), k-way and polyphase merging, distribution
//!   sort and the end-to-end external sorter.
//! * [`core`] — two-way replacement selection itself (the paper's
//!   contribution).
//! * [`analysis`] — ANOVA, the design-of-experiments runner, the snowplow
//!   model of RS and the closed-form run-length theory.
//!
//! # Quick start
//!
//! ```
//! use two_way_replacement_selection::prelude::*;
//!
//! // An in-memory simulated disk and a reverse-sorted input — the worst
//! // case of classic replacement selection.
//! let device = SimDevice::new();
//! let input = Distribution::new(DistributionKind::ReverseSorted, 50_000, 7);
//!
//! // Sort it with two-way replacement selection (recommended configuration)
//! // inside the standard external-sort pipeline.
//! let twrs = TwoWayReplacementSelection::new(TwrsConfig::recommended(1_000));
//! let mut sorter = ExternalSorter::new(twrs);
//! let report = sorter
//!     .sort_iter(&device, &mut input.records(), "sorted")
//!     .expect("sort succeeds");
//!
//! assert_eq!(report.records, 50_000);
//! // Theorem 4: a single run, where RS would have produced 50.
//! assert_eq!(report.num_runs, 1);
//! ```
//!
//! # Parallel quick start
//!
//! The same pipeline scales across cores with
//! [`ParallelExternalSorter`](extsort::ParallelExternalSorter): the input
//! is dealt to `threads` generation shards, spill writes move to dedicated
//! writer threads behind bounded channels, and the final merge prefetches
//! every run in the background. The *total* memory budget is unchanged —
//! each shard's generator gets `memory / threads` records (remainder to
//! the first shards), so 4 threads below run 2WRS with 250-record heaps
//! each. The sorted output is byte-identical to the sequential sorter's.
//!
//! ```
//! use two_way_replacement_selection::prelude::*;
//!
//! let device = SimDevice::new();
//! let input = Distribution::new(DistributionKind::MixedBalanced, 20_000, 7);
//!
//! let twrs = TwoWayReplacementSelection::new(TwrsConfig::recommended(1_000));
//! let config = ParallelSorterConfig {
//!     verify: true,
//!     ..ParallelSorterConfig::with_threads(4)
//! };
//! let mut sorter = ParallelExternalSorter::with_config(twrs, config);
//! let report = sorter
//!     .sort_iter(&device, &mut input.records(), "sorted")
//!     .expect("sort succeeds");
//!
//! assert_eq!(report.report.records, 20_000);
//! assert_eq!(report.shards.len(), 4);
//! // Aggregated I/O counters are exactly the per-shard sums.
//! assert!(report.io_is_consistent());
//! ```

#![warn(missing_docs)]

pub use twrs_analysis as analysis;
pub use twrs_core as core;
pub use twrs_extsort as extsort;
pub use twrs_heaps as heaps;
pub use twrs_storage as storage;
pub use twrs_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use twrs_core::{
        BufferSetup, InputHeuristic, OutputHeuristic, TwoWayReplacementSelection, TwrsConfig,
    };
    pub use twrs_extsort::{
        ExternalSorter, LoadSortStore, MergeConfig, ParallelExternalSorter, ParallelSortReport,
        ParallelSorterConfig, ReplacementSelection, RunCursor, RunGenerator, RunHandle,
        ShardableGenerator, SortReport, SorterConfig,
    };
    pub use twrs_storage::{FileDevice, ScopedDevice, SimDevice, SpillNamer, StorageDevice};
    pub use twrs_workloads::{Distribution, DistributionKind, Record};
}
