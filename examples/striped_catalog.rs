//! The device-catalog × stripe-width experiment behind
//! `docs/striped_spill.md`.
//!
//! ```text
//! cargo run --release --example striped_catalog
//! ```
//!
//! For every catalog model (`hdd-7200` → `pmem`) the example sorts the
//! same workload with classic replacement selection and with 2WRS, on one
//! disk and on a four-disk stripe (4 generation threads either way), and
//! prints each cell's simulated I/O time plus the 2WRS/RS ratio — once
//! for reverse-sorted input (2WRS's Theorem 4 showcase: one run where RS
//! spills one per memory-load) and once for random input (the paper's
//! break-even case). The trends to look for: the 2WRS/RS ratio drifts
//! toward the raw page ratio as the model's seek price falls toward
//! `pmem` — whatever 2WRS wins or loses in *seeks* stops mattering when
//! seeks are free — and a four-disk stripe divides the time of both
//! algorithms without changing what either sorts.

use std::time::Duration;
use two_way_replacement_selection::prelude::*;

const RECORDS: u64 = 60_000;
const MEMORY: usize = 2_000;
const THREADS: usize = 4;
const SEED: u64 = 42;

/// Sorts one workload with `generator` on the spec'd device and returns
/// (simulated I/O, total seeks, total pages moved, runs).
fn run<G: ShardableGenerator>(
    generator: G,
    spec: &str,
    distribution: DistributionKind,
) -> (Duration, u64, u64, u64) {
    let device = spec
        .parse::<DeviceSpec>()
        .expect("spec parses")
        .build()
        .expect("device builds");
    let input = Distribution::new(distribution, RECORDS, SEED);
    let report = SortJob::new(generator)
        .on(&device)
        .threads(THREADS)
        .verify(true)
        .run_iter(input.records(), "sorted")
        .unwrap_or_else(|e| panic!("sort on {spec} failed: {e}"));
    let stats = device.stats();
    (
        stats.sim_io,
        stats.counters.seeks,
        stats.counters.pages_read + stats.counters.pages_written,
        report.num_runs() as u64,
    )
}

fn table(distribution: DistributionKind) {
    println!("### {distribution:?}\n");
    println!(
        "| model      | disks | RS sim I/O | 2WRS sim I/O | 2WRS/RS | RS seeks | 2WRS seeks | RS runs | 2WRS runs |"
    );
    println!(
        "|------------|------:|-----------:|-------------:|--------:|---------:|-----------:|--------:|----------:|"
    );
    for model in ModelId::all() {
        for disks in [1usize, 4] {
            let spec = if disks == 1 {
                format!("sim:{model}")
            } else {
                format!("striped:{disks}:sim:{model}")
            };
            let (rs_io, rs_seeks, _, rs_runs) =
                run(ReplacementSelection::new(MEMORY), &spec, distribution);
            let (twrs_io, twrs_seeks, _, twrs_runs) = run(
                TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
                &spec,
                distribution,
            );
            let ratio = twrs_io.as_secs_f64() / rs_io.as_secs_f64().max(1e-12);
            println!(
                "| {model:<10} | {disks:>5} | {:>10.1?} | {:>12.1?} | {ratio:>7.3} | {rs_seeks:>8} | {twrs_seeks:>10} | {rs_runs:>7} | {twrs_runs:>9} |",
                rs_io, twrs_io
            );
        }
    }
    println!();
}

fn main() {
    println!(
        "workload: {RECORDS} records, {MEMORY} records of memory, \
         {THREADS} threads, seed {SEED}\n"
    );
    table(DistributionKind::ReverseSorted);
    table(DistributionKind::RandomUniform);
    println!(
        "page/seek/run counters are identical across models (the catalog \
         changes *time*, never *behaviour*); stripe widths differ only by \
         the per-disk reduction's extra merge pages."
    );
}
