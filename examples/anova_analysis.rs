//! Run a reduced version of the paper's Chapter 5 statistical analysis: a
//! crossed factorial experiment over the 2WRS configuration factors followed
//! by an ANOVA of the number of runs generated.
//!
//! ```text
//! cargo run --release --example anova_analysis
//! ```

use two_way_replacement_selection::analysis::anova::FactorialAnova;
use two_way_replacement_selection::analysis::doe::{paper_factorial_experiment, PaperFactors};
use two_way_replacement_selection::prelude::DistributionKind;

fn main() {
    let records: u64 = 20_000;
    let memory: usize = 400;
    let factors = PaperFactors::reduced();

    for kind in [
        DistributionKind::RandomUniform,
        DistributionKind::MixedBalanced,
    ] {
        println!(
            "=== {} input — {} executions ({} records, {} memory) ===",
            kind.label(),
            factors.executions(),
            records,
            memory
        );
        let (data, points) = paper_factorial_experiment(kind, records, memory, &factors);
        let runs: Vec<f64> = points.iter().map(|p| p.runs).collect();
        let mean_runs = runs.iter().sum::<f64>() / runs.len() as f64;
        println!("mean number of runs over all configurations: {mean_runs:.1}");

        // Main effects plus the input×output heuristic interaction the paper
        // singles out in §5.2.5.
        let table = FactorialAnova::fit(&data, &[vec![0], vec![1], vec![2], vec![3], vec![2, 3]]);
        println!("{}", table.to_text());

        // Tukey comparison of the input heuristics.
        println!("Tukey pairwise comparisons of the input heuristics:");
        for c in FactorialAnova::tukey(&data, 2, &table) {
            println!(
                "  {:>10} vs {:<10}  mean diff {:>8.2}   significance {:.3}",
                data.levels_of(2)[c.level_a],
                data.levels_of(2)[c.level_b],
                c.mean_difference,
                c.significance
            );
        }
        println!();
    }
    println!(
        "For random input the buffer-size factor dominates (Tables 5.2/5.3);\n\
         for mixed input the buffer setup and the heuristics matter (§5.2.5)."
    );
}
