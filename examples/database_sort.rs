//! A database-flavoured scenario: sorting by an anticorrelated column.
//!
//! Chapter 7 of the paper motivates 2WRS with database operators: a table
//! stored sorted by column `a` must be re-sorted by column `b`, and when the
//! two columns are anticorrelated the sort operator receives a
//! reverse-sorted input — exactly the case where classic replacement
//! selection produces its shortest runs. This example builds such a table,
//! runs both algorithms through the full external-sort pipeline and compares
//! the run counts and modelled sorting times.
//!
//! ```text
//! cargo run --release --example database_sort
//! ```

use two_way_replacement_selection::prelude::*;
use two_way_replacement_selection::workloads::AnticorrelatedTable;

fn sort_with<G: RunGenerator>(generator: G, table: &AnticorrelatedTable) -> SortReport {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let mut sorter = ExternalSorter::with_config(
        generator,
        SorterConfig {
            merge: MergeConfig {
                fan_in: 10,
                read_ahead_records: 1_024,
            },
            verify: true,
        },
    );
    let mut input = table.sort_by_b_input();
    sorter
        .sort_iter(&device, &mut input, "by_b")
        .expect("sort succeeds")
}

fn main() {
    let rows: u64 = 500_000;
    let memory: usize = 5_000;

    // A table with 500 000 rows, stored in `a` order, whose column `b` is
    // anticorrelated with `a` (b ≈ max − a plus noise).
    let table = AnticorrelatedTable::new(rows, 3).with_noise(1_000);
    println!(
        "table: {rows} rows sorted by column a; sorting by the anticorrelated column b\n\
         sort memory: {memory} records\n"
    );

    let rs = sort_with(ReplacementSelection::new(memory), &table);
    let twrs = sort_with(
        TwoWayReplacementSelection::new(TwrsConfig::recommended(memory)),
        &table,
    );

    for report in [&rs, &twrs] {
        println!(
            "{:<5} runs: {:>6}   avg run: {:>8.0} records   merge steps: {}   modelled total: {:?}",
            report.generator,
            report.num_runs,
            report.average_run_length,
            report.merge_report.merge_steps,
            report.total_modelled()
        );
    }
    let speedup = rs.total_modelled().as_secs_f64() / twrs.total_modelled().as_secs_f64();
    println!(
        "\n2WRS sorts the anticorrelated column {speedup:.1}x faster than classic RS\n\
         (the paper reports about 2.5x for this input class at its scale)."
    );
}
