//! Compare the run lengths of Load-Sort-Store, classic replacement selection
//! and two-way replacement selection on the paper's six input distributions
//! (the experiment behind Table 5.13).
//!
//! ```text
//! cargo run --release --example run_length_comparison
//! ```

use two_way_replacement_selection::prelude::*;

fn measure<G: RunGenerator>(
    mut generator: G,
    kind: DistributionKind,
    records: u64,
) -> (usize, f64) {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let namer = SpillNamer::new("example");
    let memory = generator.memory_records();
    let mut input = Distribution::new(kind, records, 7).records();
    let set = generator
        .generate(&device, &namer, &mut input)
        .expect("run generation succeeds");
    (set.num_runs(), set.relative_run_length(memory))
}

fn main() {
    let records: u64 = 200_000;
    let memory: usize = 2_000;

    println!("{records} records, {memory} records of memory\n");
    println!("{:<18} {:>14} {:>14} {:>14}", "input", "LSS", "RS", "2WRS");
    println!("{}", "-".repeat(64));
    for kind in DistributionKind::paper_set() {
        let (lss_runs, lss) = measure(LoadSortStore::new(memory), kind, records);
        let (rs_runs, rs) = measure(ReplacementSelection::new(memory), kind, records);
        let (twrs_runs, twrs) = measure(
            TwoWayReplacementSelection::new(TwrsConfig::recommended(memory)),
            kind,
            records,
        );
        println!(
            "{:<18} {:>7} ({:>4.1}x) {:>7} ({:>4.1}x) {:>7} ({:>4.1}x)",
            kind.label(),
            lss_runs,
            lss,
            rs_runs,
            rs,
            twrs_runs,
            twrs
        );
    }
    println!(
        "\nColumns show the number of runs generated and the average run length\n\
         relative to the memory size. The reverse-sorted row is the paper's\n\
         headline result: RS collapses to memory-sized runs while 2WRS emits a\n\
         single run; the mixed rows show the victim buffer capturing both\n\
         interleaved trends."
    );
}
