//! Solve the paper's differential-equation model of replacement selection
//! (§3.6) numerically and watch the memory-content density converge to the
//! stable `2 − 2x` profile of Figure 3.8.
//!
//! ```text
//! cargo run --release --example snowplow_model
//! ```

use two_way_replacement_selection::analysis::model::{density_rms_distance, SnowplowModel};

fn sparkline(density: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = density.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    // Downsample to 64 columns.
    let columns = 64;
    (0..columns)
        .map(|i| {
            let idx = i * density.len() / columns;
            let level = (density[idx] / max * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[level.min(LEVELS.len() - 1)]
        })
        .collect()
}

fn main() {
    let model = SnowplowModel::uniform(512);
    let snapshots = model.simulate(4);
    let stable = model.stable_profile();

    println!("density of memory contents m(x) over the key space x in [0, 1):\n");
    for snapshot in &snapshots {
        println!(
            "after run {}:  {}   run length = {:.2}x memory, distance to 2-2x = {:.3}",
            snapshot.run,
            sparkline(&snapshot.density),
            snapshot.run_length,
            density_rms_distance(&snapshot.density, &stable)
        );
    }
    println!(
        "stable      :  {}   (the 2 - 2x profile of Knuth's snowplow)",
        sparkline(&stable)
    );
    println!(
        "\nStarting from a uniformly filled memory the density converges to the\n\
         2 - 2x profile within two or three runs and the run length converges to\n\
         twice the available memory, as Figure 3.8 and §3.5 of the paper show."
    );
}
