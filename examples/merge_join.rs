//! Sort-merge join over two lazy `SortedStream`s — neither side ever
//! materialises a sorted file.
//!
//! ```text
//! cargo run --release --example merge_join
//! ```
//!
//! A sort-merge join sorts both inputs by the join key and zips the two
//! sorted sequences. With the classic pipeline each side pays a final write
//! pass for an output file the join reads exactly once and discards;
//! `stream_iter` hands the join two lazily merged iterators instead, so the
//! join consumes records straight out of both final merges. Here the two
//! sides are key-overlapping random tables; the join counts matches and
//! checks the result against a hash join of the same inputs.

use std::collections::HashMap;
use two_way_replacement_selection::prelude::*;

/// Pulls the next record out of a stream, panicking on I/O errors (an
/// example; real consumers propagate the `Err` item).
fn next(stream: &mut SortedStream<Record>) -> Option<Record> {
    stream.next().map(|r| r.expect("stream read succeeds"))
}

fn main() {
    let rows: u64 = 200_000;
    let memory: usize = 4_000;
    // Both tables draw keys from a range half their row count, so matches
    // are plentiful; different seeds keep the sides distinct.
    let left_input = || {
        Distribution::new(DistributionKind::RandomUniform, rows, 11)
            .records()
            .map(|r| Record::new(r.key % rows / 2, r.payload))
    };
    let right_input = || {
        Distribution::new(DistributionKind::RandomUniform, rows, 22)
            .records()
            .map(|r| Record::new(r.key % rows / 2, r.payload))
    };

    let device = SimDevice::with_model(ModelId::Hdd7200);
    let left = SortJob::new(TwoWayReplacementSelection::new(TwrsConfig::recommended(
        memory,
    )))
    .on(&device)
    .stream_iter(left_input())
    .expect("left sort succeeds");
    let right = SortJob::new(TwoWayReplacementSelection::new(TwrsConfig::recommended(
        memory,
    )))
    .on(&device)
    .stream_iter(right_input())
    .expect("right sort succeeds");
    println!(
        "left : {} records, {} runs, final pass {:?}",
        left.expected_records(),
        left.report().num_runs(),
        left.report().final_pass
    );
    println!(
        "right: {} records, {} runs, final pass {:?}",
        right.expected_records(),
        right.report().num_runs(),
        right.report().final_pass
    );

    // --- The merge-join loop over the two lazy streams ------------------
    let (mut left, mut right) = (left, right);
    let mut left_row = next(&mut left);
    let mut right_row = next(&mut right);
    let mut matches: u64 = 0;
    let mut distinct_join_keys: u64 = 0;
    while let (Some(l), Some(r)) = (&left_row, &right_row) {
        match l.key.cmp(&r.key) {
            std::cmp::Ordering::Less => left_row = next(&mut left),
            std::cmp::Ordering::Greater => right_row = next(&mut right),
            std::cmp::Ordering::Equal => {
                // Gather both equal-key groups and join them pairwise.
                let key = l.key;
                let mut left_group: u64 = 0;
                while left_row.as_ref().is_some_and(|row| row.key == key) {
                    left_group += 1;
                    left_row = next(&mut left);
                }
                let mut right_group: u64 = 0;
                while right_row.as_ref().is_some_and(|row| row.key == key) {
                    right_group += 1;
                    right_row = next(&mut right);
                }
                matches += left_group * right_group;
                distinct_join_keys += 1;
            }
        }
    }
    // Drain whatever side is longer so both streams clean up eagerly.
    while next(&mut left).is_some() {}
    while next(&mut right).is_some() {}
    assert!(device.list().is_empty(), "both streams cleaned up");

    // --- Cross-check against a hash join ---------------------------------
    let mut build: HashMap<u64, u64> = HashMap::new();
    for record in left_input() {
        *build.entry(record.key).or_default() += 1;
    }
    let expected: u64 = right_input()
        .map(|record| build.get(&record.key).copied().unwrap_or(0))
        .sum();
    assert_eq!(matches, expected, "merge join equals hash join");

    println!("\njoin result: {matches} matches over {distinct_join_keys} distinct keys");
    println!("no sorted file was written on either side — zero final-pass pages");
}
