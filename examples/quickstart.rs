//! Quickstart: sort a dataset that does not fit in memory with two-way
//! replacement selection.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example materialises one million random records on a simulated disk,
//! sorts them with the recommended 2WRS configuration through the standard
//! external-sort pipeline, verifies the output and prints a phase-by-phase
//! report. Swap `SimDevice` for `FileDevice::temp()` to run against real
//! files.

use two_way_replacement_selection::extsort::sorter::verify_sorted;
use two_way_replacement_selection::prelude::*;
use two_way_replacement_selection::workloads::{materialize, Record};

fn main() {
    let records: u64 = 1_000_000;
    let memory: usize = 10_000;

    // 1. A storage device. The simulated device keeps everything in memory
    //    and models disk seeks and transfers, which makes the example fast
    //    and deterministic.
    let device = SimDevice::with_model(ModelId::Hdd7200);

    // 2. Materialise an unsorted dataset on the device, as a database would
    //    have it on disk before an ORDER BY.
    let input = Distribution::new(DistributionKind::RandomUniform, records, 42);
    materialize(&device, "input", input.records()).expect("write input dataset");
    println!("input: {records} random records ({memory} records of sort memory)");

    // 3. Describe the sort: 2WRS with the paper's recommended configuration
    //    (both buffers, 2 % of memory, Mean input heuristic, Random output
    //    heuristic), merged with the fan-in found optimal in §6.1.1. The
    //    `SortJob` builder fronts the whole pipeline; `.threads(n)` would
    //    run the same job sharded over n workers.
    let twrs = TwoWayReplacementSelection::new(TwrsConfig::recommended(memory));

    // 4. Sort.
    let report = SortJob::new(twrs)
        .on(&device)
        .merge(MergeConfig {
            fan_in: 10,
            read_ahead_records: 1_024,
        })
        .run_file("input", "sorted")
        .expect("external sort succeeds")
        .report;

    // 5. Verify and report.
    verify_sorted::<Record>(&device, "sorted", records).expect("output is sorted and complete");
    println!("runs generated      : {}", report.num_runs);
    println!(
        "average run length  : {:.0} records ({:.2}x memory)",
        report.average_run_length, report.relative_run_length
    );
    println!(
        "run generation      : {:?} wall, {} pages written, {} seeks",
        report.run_generation.wall,
        report.run_generation.pages_written,
        report.run_generation.seeks
    );
    println!(
        "merge phase         : {:?} wall, {} merge steps, {} pages read, {} seeks",
        report.merge.wall,
        report.merge_report.merge_steps,
        report.merge.pages_read,
        report.merge.seeks
    );
    println!(
        "modelled total time : {:?} (wall + simulated I/O)",
        report.total_modelled()
    );
    println!("output verified: 'sorted' contains {records} records in order");
}
