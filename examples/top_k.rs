//! Top-k over a lazily merged sort: no final output file, no final write
//! pass.
//!
//! ```text
//! cargo run --release --example top_k
//! ```
//!
//! A top-k query wants the k smallest records of a large input — it never
//! needs the sorted file itself. The classic pipeline (`run_file`) still
//! pays a full write pass to produce that file; `stream_iter` suspends the
//! final k-way merge into a `SortedStream` instead, so the query reads the
//! first k records straight out of the merge and stops. The example runs
//! both shapes over the same input and prints the pages each one wrote,
//! with the saved final pass called out explicitly.

use two_way_replacement_selection::prelude::*;

fn main() {
    let records: u64 = 500_000;
    let memory: usize = 5_000;
    let k = 10;

    let input = || Distribution::new(DistributionKind::RandomUniform, records, 7).records();
    println!("input: {records} random records, top-{k} query\n");

    // --- Classic shape: sort to a file, read the first k ----------------
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let twrs = TwoWayReplacementSelection::new(TwrsConfig::recommended(memory));
    let file_report = SortJob::new(twrs)
        .on(&device)
        .run_iter(input(), "sorted")
        .expect("file sort succeeds");
    let mut cursor = RecordRunCursor::open(&device, &RunHandle::Forward("sorted".into()))
        .expect("open sorted output");
    let mut top_from_file = Vec::with_capacity(k);
    for _ in 0..k {
        top_from_file.push(cursor.next_record().expect("read").expect("enough records"));
    }
    println!(
        "run_iter  : {:>6} pages written total, {:>5} of them in the final pass",
        file_report.total_pages_written(),
        file_report.final_pass_pages_written()
    );

    // --- Streaming shape: suspend the final merge -----------------------
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let twrs = TwoWayReplacementSelection::new(TwrsConfig::recommended(memory));
    let stream = SortJob::new(twrs)
        .on(&device)
        .stream_iter(input())
        .expect("stream sort succeeds");
    let stream_report = stream.report().clone();
    let top_from_stream: Vec<Record> = stream
        .take(k)
        .collect::<Result<_, _>>()
        .expect("stream yields records");
    println!(
        "stream_iter: {:>6} pages written total, {:>5} in the final pass ({:?})",
        stream_report.total_pages_written(),
        stream_report.final_pass_pages_written(),
        stream_report.final_pass
    );

    assert_eq!(
        top_from_file, top_from_stream,
        "both shapes agree on the top-{k}"
    );
    assert_eq!(stream_report.final_pass_pages_written(), 0);
    // The abandoned stream removed its spill files when it was dropped.
    assert!(device.list().is_empty(), "no leftover files after drop");

    let saved = file_report.final_pass_pages_written();
    println!(
        "\ntop-{k} keys: {:?}",
        top_from_stream.iter().map(|r| r.key).collect::<Vec<_>>()
    );
    println!("final write pass saved by streaming: {saved} pages");
}
