//! Parallel external sort: the same pipeline as `quickstart`, sharded
//! across worker threads.
//!
//! ```text
//! cargo run --release --example parallel_sort
//! ```
//!
//! The example sorts one million random records twice through the same
//! `SortJob` builder — once with `threads(1)` (the sequential pipeline) and
//! once with one thread per available core — and compares the reports. The
//! parallel path divides the *same* total memory budget across its shards
//! (here: 10 000 records split over N workers, so per-shard heaps shrink as
//! threads grow), ships spill writes to dedicated writer threads over
//! bounded channels, and prefetches every merge input in the background.
//! Its output is byte-identical to the sequential path's.

use two_way_replacement_selection::extsort::sorter::verify_sorted;
use two_way_replacement_selection::prelude::*;
use two_way_replacement_selection::workloads::materialize;

fn main() {
    let records: u64 = 1_000_000;
    let memory: usize = 10_000;
    // At least two shards so the example exercises the sharded path even
    // on a single-CPU machine (threads(1) would select the sequential
    // pipeline).
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);

    let device = SimDevice::with_model(ModelId::Hdd7200);
    let input = Distribution::new(DistributionKind::RandomUniform, records, 42);
    materialize(&device, "input", input.records()).expect("write input dataset");
    println!("input: {records} random records, {memory} records of sort memory");

    let merge = MergeConfig {
        fan_in: 10,
        read_ahead_records: 1_024,
    };

    // --- Single-threaded reference -------------------------------------
    let twrs = TwoWayReplacementSelection::new(TwrsConfig::recommended(memory));
    let seq = SortJob::new(twrs)
        .on(&device)
        .merge(merge)
        .run_file("input", "sorted-seq")
        .expect("sequential sort succeeds")
        .report;
    println!(
        "\nsequential          : {:?} wall ({} runs, {} merge steps)",
        seq.total_wall(),
        seq.num_runs,
        seq.merge_report.merge_steps
    );

    // --- Parallel sort --------------------------------------------------
    // The generator is the same; `shard()` hands each worker a copy whose
    // memory budget is `memory / threads` (remainder to the first shards),
    // so total memory stays fixed no matter the thread count.
    let twrs = TwoWayReplacementSelection::new(TwrsConfig::recommended(memory));
    let par = SortJob::new(twrs)
        .on(&device)
        .threads(threads)
        .merge(merge)
        .run_file("input", "sorted-par")
        .expect("parallel sort succeeds");

    println!(
        "parallel ({threads} threads){}: {:?} wall ({} runs, {} merge steps)",
        if threads < 10 { " " } else { "" },
        par.report.total_wall(),
        par.report.num_runs,
        par.report.merge_report.merge_steps
    );
    let speedup = seq.total_wall().as_secs_f64() / par.report.total_wall().as_secs_f64().max(1e-9);
    println!("speedup             : {speedup:.2}x");

    println!("\nper-shard breakdown (run generation):");
    for shard in par.shards.as_deref().unwrap_or_default() {
        println!(
            "  shard {:>2}: {:>8} records, {:>4} runs, {:>6} pages written, {:>5} seeks",
            shard.shard,
            shard.records,
            shard.num_runs,
            shard.io.counters.pages_written,
            shard.io.counters.seeks
        );
    }
    assert!(
        par.io_is_consistent(),
        "aggregated I/O equals the shard sums"
    );

    // --- The two outputs are the same file, byte for byte ---------------
    verify_sorted::<Record>(&device, "sorted-seq", records).expect("sequential output verified");
    verify_sorted::<Record>(&device, "sorted-par", records).expect("parallel output verified");
    let mut seq_file = device.open("sorted-seq").expect("open sequential output");
    let mut par_file = device.open("sorted-par").expect("open parallel output");
    assert_eq!(seq_file.num_pages(), par_file.num_pages());
    let mut a = vec![0u8; device.page_size()];
    let mut b = vec![0u8; device.page_size()];
    for page in 0..seq_file.num_pages() {
        seq_file.read_page(page, &mut a).expect("read");
        par_file.read_page(page, &mut b).expect("read");
        assert_eq!(a, b, "outputs diverge at page {page}");
    }
    println!(
        "\noutputs are byte-identical ({} pages)",
        seq_file.num_pages()
    );
}
