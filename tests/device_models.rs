//! Catalog equivalence: a device model changes *time*, never *behaviour*.
//!
//! Every entry in the [`ModelId`] catalog shares one seek-detection rule
//! (writes never seek, reads seek on a head move) and differs only in the
//! microsecond parameters charged per access. This suite property-tests
//! the contract that makes the catalog safe to thread through the bench
//! matrix and the paper reproductions:
//!
//! * the sorted output file is **byte-identical** across all catalog
//!   models, for RS, LSS and 2WRS, single- and multi-threaded;
//! * the deterministic I/O counters (pages, files; seeks too when
//!   single-threaded — multi-threaded seeks are scheduler-dependent)
//!   are **identical** across models;
//! * only the simulated I/O time differs, and it orders strictly by the
//!   catalog's speed grades whenever any pages actually move.

use proptest::prelude::*;
use two_way_replacement_selection::prelude::*;
use two_way_replacement_selection::storage::IoStatsSnapshot;

/// Every page of `name` on `device`, so comparisons cover the exact bytes
/// (headers, payloads and trailing-page padding included).
fn file_bytes<D: StorageDevice + ?Sized>(device: &D, name: &str) -> Vec<u8> {
    let mut file = device.open(name).expect("output exists");
    let mut bytes = Vec::new();
    let mut page = vec![0u8; device.page_size()];
    for index in 0..file.num_pages() {
        file.read_page(index, &mut page).expect("page readable");
        bytes.extend_from_slice(&page);
    }
    bytes
}

/// Sorts `keys` under `model` and returns the output bytes plus the
/// device's final counters snapshot.
fn sort_under<G: ShardableGenerator>(
    generator: G,
    model: ModelId,
    keys: &[u64],
    threads: usize,
) -> (Vec<u8>, IoStatsSnapshot) {
    let device = SimDevice::with_model(model);
    let input = keys
        .iter()
        .enumerate()
        .map(|(i, k)| Record::new(*k, i as u64));
    SortJob::new(generator)
        .on(&device)
        .threads(threads)
        .verify(true)
        .run_iter(input, "out")
        .unwrap_or_else(|e| panic!("{model} sort failed: {e}"));
    (file_bytes(&device, "out"), device.stats())
}

/// The catalog contract for one generator family: byte-identical output
/// and identical deterministic counters across every model; simulated
/// time strictly ordered by speed grade once pages move.
fn assert_catalog_agrees<G: ShardableGenerator>(
    make: impl Fn(usize) -> G,
    label: &str,
    keys: &[u64],
    memory: usize,
    threads: usize,
) {
    let (reference_bytes, reference) = sort_under(make(memory), ModelId::Hdd7200, keys, threads);
    let mut previous_sim = reference.sim_io;
    for model in ModelId::all() {
        if model == ModelId::Hdd7200 {
            continue;
        }
        let (bytes, stats) = sort_under(make(memory), model, keys, threads);
        assert_eq!(
            bytes, reference_bytes,
            "{label} t{threads}: {model} output differs from hdd-7200"
        );
        let (mut a, mut b) = (stats.counters, reference.counters);
        if threads > 1 {
            // Multi-threaded seek counts depend on scheduling, not on the
            // cost model; the other counters stay exact.
            a.seeks = 0;
            b.seeks = 0;
        }
        assert_eq!(a, b, "{label} t{threads}: {model} counters drifted");
        if reference.pages_total() > 0 {
            // The catalog is declared fastest-last in `ModelId::all()`:
            // hdd-7200, sata-ssd, nvme, pmem.
            assert!(
                stats.sim_io < previous_sim,
                "{label} t{threads}: {model} should simulate strictly faster \
                 ({:?} vs {:?})",
                stats.sim_io,
                previous_sim
            );
        }
        previous_sim = stats.sim_io;
    }
}

fn check_all_generators(keys: &[u64], memory: usize, threads: usize) {
    assert_catalog_agrees(ReplacementSelection::new, "rs", keys, memory, threads);
    assert_catalog_agrees(LoadSortStore::new, "lss", keys, memory, threads);
    assert_catalog_agrees(
        |m| TwoWayReplacementSelection::new(TwrsConfig::recommended(m)),
        "2wrs",
        keys,
        memory,
        threads,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary key multisets and memory budgets: all catalog models
    /// agree byte-for-byte and counter-for-counter, single-threaded.
    #[test]
    fn catalog_models_agree_single_threaded(
        keys in prop::collection::vec(0u64..50_000, 200..1_500),
        memory in 60usize..250,
    ) {
        check_all_generators(&keys, memory, 1);
    }

    /// The same contract under a four-way parallel sort (seeks excluded —
    /// they are scheduler-dependent, like the bench baseline's `null`).
    #[test]
    fn catalog_models_agree_multi_threaded(
        keys in prop::collection::vec(0u64..50_000, 200..1_500),
        memory in 60usize..250,
    ) {
        check_all_generators(&keys, memory, 4);
    }
}

/// Sorts `keys` on a `striped:<disks>:sim:hdd-7200` stripe and returns the
/// output bytes plus the stripe's aggregate counters snapshot.
fn sort_striped<G: ShardableGenerator>(
    generator: G,
    disks: usize,
    keys: &[u64],
    threads: usize,
) -> (Vec<u8>, IoStatsSnapshot) {
    let device = format!("striped:{disks}:sim:hdd-7200")
        .parse::<DeviceSpec>()
        .expect("striped spec parses")
        .build()
        .expect("striped device builds");
    let input = keys
        .iter()
        .enumerate()
        .map(|(i, k)| Record::new(*k, i as u64));
    SortJob::new(generator)
        .on(&device)
        .threads(threads)
        .verify(true)
        .run_iter(input, "out")
        .unwrap_or_else(|e| panic!("striped:{disks} sort failed: {e}"));
    (file_bytes(&device, "out"), device.stats())
}

#[test]
fn striped_output_is_byte_identical_to_single_disk() {
    // Striping changes *where* spills land and how the reduction is
    // grouped, never *what* is sorted: for RS, LSS and 2WRS alike, the
    // output file on a 4-disk stripe is byte-identical to the single-disk
    // file at both thread counts, and the sorted record count matches.
    let keys: Vec<u64> = Distribution::new(DistributionKind::RandomUniform, 4_000, 7)
        .records()
        .map(|r| r.key)
        .collect();
    fn check<G: ShardableGenerator>(make: impl Fn(usize) -> G, label: &str, keys: &[u64]) {
        for threads in [1usize, 4] {
            let (single_bytes, _) = sort_under(make(200), ModelId::Hdd7200, keys, threads);
            let (striped_bytes, stats) = sort_striped(make(200), 4, keys, threads);
            assert_eq!(
                striped_bytes, single_bytes,
                "{label} t{threads}: striped output differs from single-disk"
            );
            assert!(stats.counters.pages_written > 0, "{label} t{threads}");
        }
    }
    check(ReplacementSelection::new, "rs", &keys);
    check(LoadSortStore::new, "lss", &keys);
    check(
        |m| TwoWayReplacementSelection::new(TwrsConfig::recommended(m)),
        "2wrs",
        &keys,
    );
}

#[test]
fn catalog_models_agree_on_a_paper_distribution() {
    // One fixed, spill-heavy input per thread count so the equivalence is
    // exercised deterministically on every `cargo test` run even if the
    // property cases above shrink in a future config.
    let keys: Vec<u64> = Distribution::new(DistributionKind::RandomUniform, 4_000, 7)
        .records()
        .map(|r| r.key)
        .collect();
    for threads in [1usize, 4] {
        check_all_generators(&keys, 200, threads);
    }
}
