//! Integration tests asserting the *shapes* of the paper's headline results
//! (Table 5.13 and the Chapter 6 conclusions) at laptop scale — who wins,
//! and roughly by how much.

use two_way_replacement_selection::analysis::model::SnowplowModel;
use two_way_replacement_selection::analysis::theory;
use two_way_replacement_selection::prelude::*;

const RECORDS: u64 = 60_000;
const MEMORY: usize = 600;

fn relative_run_length<G: RunGenerator>(mut generator: G, kind: DistributionKind) -> f64 {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let namer = SpillNamer::new("shapes");
    let memory = generator.memory_records();
    let mut input = Distribution::new(kind, RECORDS, 23).records();
    generator
        .generate(&device, &namer, &mut input)
        .expect("run generation succeeds")
        .relative_run_length(memory)
}

#[test]
fn table_5_13_shape_holds() {
    for kind in DistributionKind::paper_set() {
        let rs = relative_run_length(ReplacementSelection::new(MEMORY), kind);
        let twrs = relative_run_length(
            TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
            kind,
        );
        // 2WRS is never meaningfully worse than RS...
        assert!(
            twrs >= rs * 0.85,
            "{kind:?}: 2WRS {twrs:.2} clearly below RS {rs:.2}"
        );
        // ...and is far better wherever the paper says so.
        match kind {
            DistributionKind::ReverseSorted
            | DistributionKind::MixedBalanced
            | DistributionKind::MixedImbalanced { .. } => {
                assert!(
                    twrs >= rs * 3.0,
                    "{kind:?}: expected a large 2WRS advantage, got {twrs:.2} vs {rs:.2}"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn measured_run_lengths_track_the_theory_oracles() {
    for kind in DistributionKind::paper_set() {
        let rs = relative_run_length(ReplacementSelection::new(MEMORY), kind);
        let expected = theory::rs_expected_relative_run_length(kind, RECORDS, MEMORY)
            .relative_run_length(RECORDS, MEMORY);
        assert!(
            rs >= expected * 0.6 && rs <= expected * 1.8,
            "{kind:?}: RS measured {rs:.2}, theory {expected:.2}"
        );
    }
}

#[test]
fn snowplow_model_and_measured_rs_agree_on_random_input() {
    // The §3.6 model predicts the measured RS run length for random input.
    let model_run_length = SnowplowModel::uniform(256)
        .simulate(6)
        .last()
        .expect("snapshots")
        .run_length;
    let measured = relative_run_length(
        ReplacementSelection::new(MEMORY),
        DistributionKind::RandomUniform,
    );
    assert!(
        (model_run_length - measured).abs() < 0.4,
        "model {model_run_length:.2} vs measured {measured:.2}"
    );
}

#[test]
fn chapter_6_conclusion_fewer_runs_means_fewer_merge_steps() {
    // The mechanism behind every Chapter 6 speedup: 2WRS generates fewer
    // runs on structured input, so the merge phase does less work.
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let config = SorterConfig {
        merge: MergeConfig {
            fan_in: 10,
            read_ahead_records: 512,
        },
        verify: true,
    };
    let run = |generator: &mut dyn FnMut() -> SortReport| generator();

    let mut rs_sorter = ExternalSorter::with_config(ReplacementSelection::new(MEMORY), config);
    let rs_report = run(&mut || {
        let mut input = Distribution::new(DistributionKind::ReverseSorted, RECORDS, 3).records();
        rs_sorter.sort_iter(&device, &mut input, "rs_out").unwrap()
    });

    let mut twrs_sorter = ExternalSorter::with_config(
        TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
        config,
    );
    let twrs_report = run(&mut || {
        let mut input = Distribution::new(DistributionKind::ReverseSorted, RECORDS, 3).records();
        twrs_sorter
            .sort_iter(&device, &mut input, "twrs_out")
            .unwrap()
    });

    assert!(twrs_report.num_runs < rs_report.num_runs / 10);
    assert!(twrs_report.merge_report.merge_steps <= rs_report.merge_report.merge_steps);
    assert!(
        twrs_report.merge_report.records_written <= rs_report.merge_report.records_written,
        "2WRS should rewrite no more data during the merge"
    );
    assert!(twrs_report.total_modelled() < rs_report.total_modelled());
}
