//! "Bring your own record type": a 32-byte `UserEvent` record sorted
//! end-to-end through every run-generation algorithm, sequentially and in
//! parallel, via the `SortJob` front door.
//!
//! The pipeline is generic over `SortableRecord`; nothing in this test
//! mentions the default paper `Record`. The event record uses an 8-byte
//! string-prefix key (lexicographic), a timestamp and an opaque payload —
//! the kind of shape a log-ingestion workload would sort by user.

mod common;

use common::file_bytes;
use two_way_replacement_selection::prelude::*;
use two_way_replacement_selection::storage::{FixedSizeRecord, SortableRecord};

/// A 32-byte event: 8-byte string-prefix key, 8-byte timestamp, 16-byte
/// opaque payload. Ordered by `(prefix, timestamp, payload)`, which is
/// total, so independently produced sorted outputs are byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct UserEvent {
    prefix: [u8; 8],
    timestamp: u64,
    payload: [u8; 16],
}

impl UserEvent {
    fn new(user: &str, timestamp: u64, tag: u8) -> Self {
        let mut prefix = [0u8; 8];
        let bytes = user.as_bytes();
        let n = bytes.len().min(8);
        prefix[..n].copy_from_slice(&bytes[..n]);
        UserEvent {
            prefix,
            timestamp,
            payload: [tag; 16],
        }
    }
}

impl FixedSizeRecord for UserEvent {
    const SIZE: usize = 32;

    fn write_to(&self, buf: &mut [u8]) {
        buf[0..8].copy_from_slice(&self.prefix);
        buf[8..16].copy_from_slice(&self.timestamp.to_le_bytes());
        buf[16..32].copy_from_slice(&self.payload);
    }

    fn read_from(buf: &[u8]) -> Self {
        UserEvent {
            prefix: buf[0..8].try_into().expect("8 bytes"),
            timestamp: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
            payload: buf[16..32].try_into().expect("16 bytes"),
        }
    }
}

impl SortableRecord for UserEvent {
    /// The cached-key hook: big-endian bytes of the prefix preserve
    /// lexicographic order, so the projection is monotone w.r.t. `Ord`.
    fn sort_key(&self) -> u64 {
        u64::from_be_bytes(self.prefix)
    }
}

/// A deterministic, decidedly unsorted event stream: user names cycle out
/// of phase with descending timestamps, so neither component arrives in
/// order.
fn events(n: u64) -> impl Iterator<Item = UserEvent> + Clone {
    (0..n).map(move |i| {
        let user = format!("user{:04}", i * 7919 % 997);
        UserEvent::new(&user, n - i, (i % 251) as u8)
    })
}

fn read_events(device: &SimDevice, name: &str) -> Vec<UserEvent> {
    RunCursor::<UserEvent>::open(device, &RunHandle::Forward(name.into()))
        .expect("open output")
        .read_all()
        .expect("read output")
}

fn sort_and_check<G: ShardableGenerator>(label: &str, generator: G, threads: usize) -> Vec<u8> {
    const N: u64 = 8_000;
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let report = SortJob::new(generator)
        .on(&device)
        .threads(threads)
        .verify(true)
        .run_iter(events(N), "sorted")
        .unwrap_or_else(|e| panic!("{label} with {threads} thread(s) failed: {e}"));

    let context = format!("{label}, {threads} thread(s)");
    assert_eq!(report.report.records, N, "record count ({context})");
    assert_eq!(report.threads, threads, "threads echoed ({context})");
    assert_eq!(
        report.is_parallel(),
        threads > 1,
        "path selection ({context})"
    );
    assert!(report.io_is_consistent(), "io accounting ({context})");

    // Fully sorted and the exact input multiset.
    let output = read_events(&device, "sorted");
    assert!(
        output.windows(2).all(|w| w[0] <= w[1]),
        "output sorted ({context})"
    );
    let mut expected: Vec<UserEvent> = events(N).collect();
    expected.sort_unstable();
    assert_eq!(output, expected, "output multiset ({context})");

    // Return raw output bytes so callers can pin cross-engine identity.
    file_bytes(&device, "sorted")
}

#[test]
fn user_events_sort_through_every_generator_sequential_and_parallel() {
    for threads in [1, 4] {
        let rs = sort_and_check("RS", ReplacementSelection::new(300), threads);
        let lss = sort_and_check("LSS", LoadSortStore::new(300), threads);
        let twrs = sort_and_check(
            "2WRS",
            TwoWayReplacementSelection::new(TwrsConfig::recommended(300)),
            threads,
        );
        // All three engines produce the same file, byte for byte: the
        // total order on UserEvent leaves no freedom in the output.
        assert_eq!(rs, lss, "RS vs LSS bytes ({threads} threads)");
        assert_eq!(rs, twrs, "RS vs 2WRS bytes ({threads} threads)");
    }
}

#[test]
fn user_event_parallel_output_is_byte_identical_to_sequential() {
    let seq = sort_and_check("RS", ReplacementSelection::new(250), 1);
    let par = sort_and_check("RS", ReplacementSelection::new(250), 4);
    assert_eq!(seq, par, "RS: 1-thread vs 4-thread bytes");

    let seq = sort_and_check(
        "2WRS",
        TwoWayReplacementSelection::new(TwrsConfig::recommended(250)),
        1,
    );
    let par = sort_and_check(
        "2WRS",
        TwoWayReplacementSelection::new(TwrsConfig::recommended(250)),
        4,
    );
    assert_eq!(seq, par, "2WRS: 1-thread vs 4-thread bytes");
}

#[test]
fn user_events_round_trip_through_materialised_files() {
    // run_file_as: the on-disk path with an explicit record type.
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let mut writer =
        two_way_replacement_selection::storage::RunWriter::<UserEvent>::create(&device, "input")
            .expect("create input");
    for event in events(3_000) {
        writer.push(&event).expect("write event");
    }
    writer.finish().expect("finish input");

    let report = SortJob::new(LoadSortStore::new(200))
        .on(&device)
        .threads(2)
        .verify(true)
        .run_file_as::<UserEvent>("input", "sorted")
        .expect("sort succeeds");
    assert_eq!(report.report.records, 3_000);

    let output = read_events(&device, "sorted");
    let mut expected: Vec<UserEvent> = events(3_000).collect();
    expected.sort_unstable();
    assert_eq!(output, expected);
}

#[test]
fn user_event_sort_key_is_monotone() {
    // The contract the cached-key hook must satisfy, checked on the
    // lexicographic prefix: a <= b implies sort_key(a) <= sort_key(b).
    let mut sample: Vec<UserEvent> = events(2_000).collect();
    sample.sort_unstable();
    assert!(sample
        .windows(2)
        .all(|w| w[0].sort_key() <= w[1].sort_key()));
}
