//! Pinning suite for the `SortJob` builder front door.
//!
//! * `threads(1)` and `threads(4)` produce **byte-identical** output files;
//! * builder defaults reproduce the old `ExternalSorter::new` behaviour
//!   field-for-field on a fixed seed;
//! * a corrupt/truncated input dataset surfaces as an `Err` from
//!   `run_file` / `sort_file`, never a panic (regression for the old
//!   `.expect("input dataset is readable")` paths).

mod common;

use common::file_bytes;
use two_way_replacement_selection::prelude::*;
use two_way_replacement_selection::storage::{PageBuf, StorageError};
use two_way_replacement_selection::workloads::materialize;

const SEED: u64 = 20_107;
const RECORDS: u64 = 5_000;
const MEMORY: usize = 250;

fn input() -> Distribution {
    Distribution::new(DistributionKind::MixedBalanced, RECORDS, SEED)
}

#[test]
fn one_thread_and_four_threads_produce_byte_identical_output() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let one = SortJob::new(TwoWayReplacementSelection::new(TwrsConfig::recommended(
        MEMORY,
    )))
    .on(&device)
    .threads(1)
    .verify(true)
    .run_iter(input().records(), "one")
    .expect("1-thread job succeeds");
    let four = SortJob::new(TwoWayReplacementSelection::new(TwrsConfig::recommended(
        MEMORY,
    )))
    .on(&device)
    .threads(4)
    .verify(true)
    .run_iter(input().records(), "four")
    .expect("4-thread job succeeds");

    assert!(!one.is_parallel());
    assert!(four.is_parallel());
    assert_eq!(one.report.records, RECORDS);
    assert_eq!(four.report.records, RECORDS);
    assert!(four.io_is_consistent());
    assert_eq!(
        file_bytes(&device, "one"),
        file_bytes(&device, "four"),
        "thread count must not change a single output byte"
    );
}

#[test]
fn builder_defaults_match_the_old_sequential_front_door() {
    // The deprecated `ExternalSorter::new` is the pre-redesign default
    // entry point; `SortJob::new(g).on(&device)` must behave identically.
    let old_device = SimDevice::with_model(ModelId::Hdd7200);
    #[allow(deprecated)]
    let mut old = ExternalSorter::new(ReplacementSelection::new(MEMORY));
    let mut iter = input().records();
    let old_report = old
        .sort_iter(&old_device, &mut iter, "out")
        .expect("old front door sorts");

    let new_device = SimDevice::with_model(ModelId::Hdd7200);
    let new_report = SortJob::new(ReplacementSelection::new(MEMORY))
        .on(&new_device)
        .run_iter(input().records(), "out")
        .expect("builder sorts");

    // Same defaults ⇒ same report, field for field (wall-clock aside).
    assert_eq!(new_report.threads, 1);
    assert!(new_report.shards.is_none());
    let (old_r, new_r) = (&old_report, &new_report.report);
    assert_eq!(new_r.generator, old_r.generator);
    assert_eq!(new_r.records, old_r.records);
    assert_eq!(new_r.num_runs, old_r.num_runs);
    assert_eq!(new_r.average_run_length, old_r.average_run_length);
    assert_eq!(new_r.relative_run_length, old_r.relative_run_length);
    assert_eq!(new_r.merge_report, old_r.merge_report);
    assert_eq!(
        new_r.run_generation.pages_written,
        old_r.run_generation.pages_written
    );
    assert_eq!(
        new_r.run_generation.pages_read,
        old_r.run_generation.pages_read
    );
    assert_eq!(new_r.run_generation.seeks, old_r.run_generation.seeks);
    assert_eq!(new_r.merge.pages_written, old_r.merge.pages_written);
    assert_eq!(new_r.merge.pages_read, old_r.merge.pages_read);
    assert_eq!(new_r.merge.seeks, old_r.merge.seeks);
    // Default = no verification pass, like the old constructor.
    assert!(new_r.verify.is_none());
    assert!(old_r.verify.is_none());
    assert_eq!(
        file_bytes(&new_device, "out"),
        file_bytes(&old_device, "out")
    );
}

#[test]
fn builder_config_matches_with_config() {
    let cfg = SorterConfig {
        merge: MergeConfig {
            fan_in: 3,
            read_ahead_records: 32,
        },
        verify: true,
    };
    let old_device = SimDevice::with_model(ModelId::Hdd7200);
    let mut old = ExternalSorter::with_config(LoadSortStore::new(MEMORY), cfg);
    let mut iter = input().records();
    let old_report = old.sort_iter(&old_device, &mut iter, "out").unwrap();

    let new_device = SimDevice::with_model(ModelId::Hdd7200);
    let new_report = SortJob::new(LoadSortStore::new(MEMORY))
        .config(cfg)
        .on(&new_device)
        .run_iter(input().records(), "out")
        .unwrap();

    assert_eq!(new_report.report.merge_report, old_report.merge_report);
    assert!(new_report.report.verify.is_some());
    assert_eq!(
        file_bytes(&new_device, "out"),
        file_bytes(&old_device, "out")
    );
}

/// Writes a structurally valid run-file header claiming `claimed` records
/// but provides only one (partial) data page, so reading past it fails.
fn write_truncated_dataset(device: &SimDevice, name: &str, claimed: u64) {
    let page_size = device.page_size();
    let mut file = device.create(name).expect("create dataset");
    let mut header = PageBuf::new(page_size);
    let bytes = header.as_bytes_mut();
    bytes[0..4].copy_from_slice(&0x5457_5253u32.to_le_bytes()); // "TWRS" magic
    bytes[4..8].copy_from_slice(&16u32.to_le_bytes()); // Record::SIZE
    bytes[8..16].copy_from_slice(&claimed.to_le_bytes());
    file.write_page(0, header.as_bytes()).expect("write header");
    // One data page only — far fewer than `claimed` records' worth.
    let data = PageBuf::new(page_size);
    file.write_page(1, data.as_bytes()).expect("write one page");
    file.flush().expect("flush");
}

#[test]
fn sequential_sort_file_reports_truncated_input_as_an_error() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    write_truncated_dataset(&device, "truncated", 100_000);
    let mut sorter =
        ExternalSorter::with_config(ReplacementSelection::new(MEMORY), SorterConfig::default());
    let result = sorter.sort_file(&device, "truncated", "out");
    assert!(
        matches!(
            result,
            Err(two_way_replacement_selection::extsort::SortError::Storage(
                _
            ))
        ),
        "expected a storage error, got {result:?}"
    );
    // No valid-looking partial output may survive the failure.
    assert!(!device.exists("out"), "partial output left behind");
}

#[test]
fn parallel_sort_file_reports_truncated_input_as_an_error() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    write_truncated_dataset(&device, "truncated", 100_000);
    let mut sorter = ParallelExternalSorter::with_config(
        ReplacementSelection::new(MEMORY),
        ParallelSorterConfig::with_threads(3),
    );
    let result = sorter.sort_file(&device, "truncated", "out");
    assert!(
        matches!(
            result,
            Err(two_way_replacement_selection::extsort::SortError::Storage(
                _
            ))
        ),
        "expected a storage error, got {result:?}"
    );
    // The failed sort must not leave spill files or a partial output
    // behind.
    let mut leftovers = device.list();
    leftovers.retain(|name| name.starts_with("psort-"));
    assert!(
        leftovers.is_empty(),
        "spill files left behind: {leftovers:?}"
    );
    assert!(!device.exists("out"), "partial output left behind");
}

#[test]
fn sort_job_run_file_reports_truncated_input_as_an_error() {
    for threads in [1, 4] {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        write_truncated_dataset(&device, "truncated", 50_000);
        let result = SortJob::new(LoadSortStore::new(MEMORY))
            .on(&device)
            .threads(threads)
            .run_file("truncated", "out");
        assert!(
            result.is_err(),
            "truncated input must fail ({threads} threads)"
        );
        assert!(
            !device.exists("out"),
            "partial output left behind ({threads} threads)"
        );
    }
}

#[test]
fn sort_file_still_works_on_healthy_input() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    materialize(&device, "input", input().records()).expect("materialise");
    let report = SortJob::new(ReplacementSelection::new(MEMORY))
        .on(&device)
        .verify(true)
        .run_file("input", "out")
        .expect("healthy dataset sorts");
    assert_eq!(report.report.records, RECORDS);
}

#[test]
fn record_size_mismatch_is_an_error_not_a_panic() {
    // A dataset of u64 keys read as 16-byte Records: the header record
    // size does not match, which must surface from `open`, as an error.
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let mut writer =
        two_way_replacement_selection::storage::RunWriter::<u64>::create(&device, "keys")
            .expect("create dataset");
    for k in 0..1_000u64 {
        writer.push(&k).expect("write key");
    }
    writer.finish().expect("finish");

    let mut sorter =
        ExternalSorter::with_config(ReplacementSelection::new(MEMORY), SorterConfig::default());
    let result = sorter.sort_file(&device, "keys", "out");
    match result {
        Err(two_way_replacement_selection::extsort::SortError::Storage(
            StorageError::CorruptHeader(_),
        )) => {}
        other => panic!("expected a corrupt-header error, got {other:?}"),
    }
}
