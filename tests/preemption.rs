//! Cooperative-preemption acceptance: canceling a *running* job must end
//! it as `Canceled` at the next phase/page boundary, with zero leftover
//! spill files and its whole memory lease returned — no matter which
//! phase of the pipeline (run generation, intermediate merge, final
//! pass) the cancel lands in, sequential or parallel.
//!
//! The tests drive cancellation from inside the I/O path: a
//! `TriggerDevice` counts every page read/write and fires the job's
//! `CancellationToken` at a precise operation number, chosen as a
//! fraction of a calibration run's total. That pins the preemption point
//! to the sort's I/O timeline instead of wall-clock sleeps.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use two_way_replacement_selection::prelude::*;
use twrs_extsort::service::RebalanceKind;
use twrs_extsort::{CancellationToken, SortError};
use twrs_storage::{IoStats, PageFile};

struct TriggerState {
    ops: AtomicU64,
    fire_at: u64,
    token: CancellationToken,
}

impl TriggerState {
    fn tick(&self) {
        let op = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
        if op == self.fire_at {
            self.token.cancel();
        }
    }
}

/// A [`SimDevice`] that fires a [`CancellationToken`] when the
/// `fire_at`-th page operation (read or write, any file) happens.
#[derive(Clone)]
struct TriggerDevice {
    inner: SimDevice,
    state: Arc<TriggerState>,
}

impl TriggerDevice {
    fn new(fire_at: u64, token: CancellationToken) -> Self {
        TriggerDevice {
            inner: SimDevice::with_model(ModelId::Hdd7200),
            state: Arc::new(TriggerState {
                ops: AtomicU64::new(0),
                fire_at,
                token,
            }),
        }
    }

    fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }
}

struct TriggerFile {
    inner: Box<dyn PageFile>,
    state: Arc<TriggerState>,
}

impl PageFile for TriggerFile {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_page(&mut self, index: u64, buf: &mut [u8]) -> twrs_storage::Result<()> {
        self.state.tick();
        self.inner.read_page(index, buf)
    }

    fn write_page(&mut self, index: u64, data: &[u8]) -> twrs_storage::Result<()> {
        self.state.tick();
        self.inner.write_page(index, data)
    }

    fn flush(&mut self) -> twrs_storage::Result<()> {
        self.inner.flush()
    }
}

impl StorageDevice for TriggerDevice {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn create(&self, name: &str) -> twrs_storage::Result<Box<dyn PageFile>> {
        Ok(Box::new(TriggerFile {
            inner: self.inner.create(name)?,
            state: self.state.clone(),
        }))
    }

    fn open(&self, name: &str) -> twrs_storage::Result<Box<dyn PageFile>> {
        Ok(Box::new(TriggerFile {
            inner: self.inner.open(name)?,
            state: self.state.clone(),
        }))
    }

    fn remove(&self, name: &str) -> twrs_storage::Result<()> {
        self.inner.remove(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn io_stats(&self) -> &IoStats {
        self.inner.io_stats()
    }
}

const GLOBAL_MEMORY: usize = 500;

/// Runs one `records`-record job through a single-worker service on a
/// trigger device that cancels at page operation `fire_at`; returns the
/// device, the job outcome, the service report and the total operations
/// counted.
fn run_with_trigger(
    fire_at: u64,
    threads: usize,
    records: u64,
) -> (
    TriggerDevice,
    twrs_extsort::Result<CompletedJob>,
    ServiceReport,
    u64,
) {
    let token = CancellationToken::new();
    let device = TriggerDevice::new(fire_at, token.clone());
    let service = SortService::new(
        ServiceConfig::new(GLOBAL_MEMORY)
            .workers(1)
            .grant_policy(GrantPolicy::FixedShare { shares: 1 }),
    )
    .unwrap();
    let input = Distribution::new(DistributionKind::RandomUniform, records, 0xFEED);
    let job = SortJob::new(ReplacementSelection::new(GLOBAL_MEMORY))
        .on(&device)
        .threads(threads)
        .cancel_token(token);
    let handle = service.submit("t", job, input.records(), "out").unwrap();
    let outcome = handle.wait();
    let report = service.shutdown();
    let ops = device.ops();
    (device, outcome, report, ops)
}

/// Total page operations of an uncanceled run, calibrated once per
/// thread count (the workload is deterministic, so the count is too).
fn calibrated_total(threads: usize, records: u64) -> u64 {
    static TOTALS: OnceLock<std::sync::Mutex<std::collections::BTreeMap<(usize, u64), u64>>> =
        OnceLock::new();
    let totals = TOTALS.get_or_init(Default::default);
    if let Some(&total) = totals.lock().unwrap().get(&(threads, records)) {
        return total;
    }
    let (device, outcome, report, total) = run_with_trigger(u64::MAX, threads, records);
    let done = outcome.expect("calibration run must complete");
    assert_eq!(done.report.report.records, records);
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(device.list(), vec!["out".to_string()]);
    totals.lock().unwrap().insert((threads, records), total);
    total
}

/// Cancels a 100k-record job at a given fraction of its I/O timeline and
/// checks the full preemption contract.
fn preempt_at(phase: &str, fraction_percent: u64, threads: usize) {
    let records = 100_000;
    let total = calibrated_total(threads, records);
    let fire_at = (total * fraction_percent / 100).max(1);
    let (device, outcome, report, _) = run_with_trigger(fire_at, threads, records);
    match outcome {
        Err(SortError::Canceled(_)) => {}
        other => panic!("{phase} (threads={threads}): expected Canceled, got {other:?}"),
    }
    // No leftover spill files, no partial output.
    assert_eq!(
        device.list(),
        Vec::<String>::new(),
        "{phase} (threads={threads}) left files behind"
    );
    // Exactly one lease and one release, returning the arbiter to its
    // pre-admission level.
    assert_eq!(report.jobs_canceled_running, 1);
    assert_eq!(report.jobs_canceled, 1);
    assert_eq!(report.jobs_completed, 0);
    assert_eq!(report.rebalances.len(), 2, "{phase} (threads={threads})");
    let lease = report.rebalances[0];
    let release = report.rebalances[1];
    assert_eq!(lease.kind, RebalanceKind::Lease);
    assert_eq!(release.kind, RebalanceKind::Release);
    assert_eq!(release.granted, lease.granted, "partial lease returned");
    assert_eq!(release.leased_after, 0);
    assert_eq!(release.active_after, 0);
}

/// With 500 records of memory over 100k records, run generation is
/// roughly the first fifth of the I/O timeline, the intermediate merges
/// the middle, and the final pass the tail — the three fractions below
/// land one cancel in each phase.
#[test]
fn preemption_in_every_phase_single_threaded() {
    preempt_at("run generation", 8, 1);
    preempt_at("intermediate merge", 45, 1);
    preempt_at("final pass", 85, 1);
}

#[test]
fn preemption_in_every_phase_multi_threaded() {
    preempt_at("run generation", 8, 4);
    preempt_at("intermediate merge", 45, 4);
    preempt_at("final pass", 85, 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever operation the cancel lands on — including after the job
    /// already finished — the job ends Ok or Canceled (never hangs, never
    /// another error), a canceled job leaves a clean device, and
    /// `sum(leases) <= global` holds at every rebalance point.
    #[test]
    fn random_cancel_timing_never_violates_the_lease_invariant(
        fraction_ppm in 1_000usize..1_200_000,
        threads in 1usize..3,
    ) {
        let records = 20_000;
        let total = calibrated_total(threads, records);
        let fire_at = (total.saturating_mul(fraction_ppm as u64) / 1_000_000).max(1);
        let (device, outcome, report, _) = run_with_trigger(fire_at, threads, records);
        match outcome {
            Ok(done) => {
                prop_assert_eq!(done.report.report.records, records);
                prop_assert_eq!(device.list(), vec!["out".to_string()]);
            }
            Err(SortError::Canceled(_)) => {
                prop_assert_eq!(device.list(), Vec::<String>::new());
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
        prop_assert_eq!(report.rebalances.len(), 2);
        for event in &report.rebalances {
            prop_assert!(
                event.leased_after <= report.global_memory_records,
                "rebalance violated the budget: {:?}",
                event
            );
        }
        prop_assert_eq!(report.rebalances.last().unwrap().leased_after, 0);
    }
}
