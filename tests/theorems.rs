//! Integration tests for the closed-form results of §5.1 (Theorems 1–7),
//! exercising RS and 2WRS end to end across the workspace crates.

use two_way_replacement_selection::prelude::*;

fn generate<G: RunGenerator>(
    mut generator: G,
    kind: DistributionKind,
    records: u64,
    exact: bool,
) -> (usize, f64) {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let namer = SpillNamer::new("theorems");
    let memory = generator.memory_records();
    let dist = if exact {
        Distribution::exact(kind, records)
    } else {
        Distribution::new(kind, records, 9)
    };
    let mut input = dist.records();
    let set = generator
        .generate(&device, &namer, &mut input)
        .expect("run generation succeeds");
    (set.num_runs(), set.relative_run_length(memory))
}

const RECORDS: u64 = 50_000;
const MEMORY: usize = 500;

#[test]
fn theorem_1_rs_sorted_input_is_one_run() {
    let (runs, _) = generate(
        ReplacementSelection::new(MEMORY),
        DistributionKind::Sorted,
        RECORDS,
        true,
    );
    assert_eq!(runs, 1);
}

#[test]
fn theorem_2_twrs_sorted_input_is_one_run() {
    let (runs, _) = generate(
        TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
        DistributionKind::Sorted,
        RECORDS,
        true,
    );
    assert_eq!(runs, 1);
}

#[test]
fn theorem_3_rs_reverse_sorted_input_gives_memory_sized_runs() {
    let (runs, relative) = generate(
        ReplacementSelection::new(MEMORY),
        DistributionKind::ReverseSorted,
        RECORDS,
        true,
    );
    assert_eq!(runs as u64, RECORDS / MEMORY as u64);
    assert!((relative - 1.0).abs() < 0.01);
}

#[test]
fn theorem_4_twrs_reverse_sorted_input_is_one_run() {
    let (runs, _) = generate(
        TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
        DistributionKind::ReverseSorted,
        RECORDS,
        true,
    );
    assert_eq!(runs, 1);
}

#[test]
fn theorem_5_rs_alternating_input_is_about_twice_memory() {
    let (_, relative) = generate(
        ReplacementSelection::new(MEMORY),
        DistributionKind::Alternating { sections: 10 },
        RECORDS,
        true,
    );
    // The paper measures 1.94 for its parameters; Theorem 5 bounds it by 2.
    assert!((1.5..2.2).contains(&relative), "relative = {relative}");
}

#[test]
fn theorem_6_twrs_alternating_input_is_one_run_per_section() {
    let sections = 10u32;
    let (runs, _) = generate(
        TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
        DistributionKind::Alternating { sections },
        RECORDS,
        true,
    );
    assert!(
        (sections as usize..=sections as usize + 2).contains(&runs),
        "expected about {sections} runs, got {runs}"
    );
}

#[test]
fn theorem_7_twrs_is_never_worse_than_load_sort_store() {
    // 2WRS never produces more runs than ceil(n / memory) + 1 on any of the
    // paper's distributions (the Load-Sort-Store bound Theorem 7 implies).
    let bound = RECORDS.div_ceil(MEMORY as u64) as usize + 1;
    for kind in DistributionKind::paper_set() {
        let (runs, _) = generate(
            TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
            kind,
            RECORDS,
            false,
        );
        assert!(
            runs <= bound,
            "{kind:?}: {runs} runs exceeds the bound {bound}"
        );
    }
}

#[test]
fn snowplow_rs_random_input_is_about_twice_memory() {
    // §3.5: the snowplow argument gives 2× memory for random input, for both
    // algorithms (§5.2.4).
    let (_, rs) = generate(
        ReplacementSelection::new(MEMORY),
        DistributionKind::RandomUniform,
        RECORDS,
        false,
    );
    let (_, twrs) = generate(
        TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
        DistributionKind::RandomUniform,
        RECORDS,
        false,
    );
    assert!((1.6..2.4).contains(&rs), "RS relative = {rs}");
    assert!((1.5..2.4).contains(&twrs), "2WRS relative = {twrs}");
}
