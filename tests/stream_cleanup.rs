//! Spill-file lifecycle regressions: a half-consumed `SortedStream` and a
//! failing `RecordSink` must both leave the device with no run, spill or
//! intermediate-merge files — streaming consumers may abandon a sort at any
//! point, and a leak here would accumulate across every top-k query.

use two_way_replacement_selection::prelude::*;

/// A sink that accepts `limit` records and then fails, simulating a
/// consumer that dies mid-drain.
struct FailingSink {
    accepted: u64,
    limit: u64,
}

impl RecordSink<Record> for FailingSink {
    fn push(&mut self, _record: Record) -> two_way_replacement_selection::extsort::Result<()> {
        if self.accepted == self.limit {
            return Err(
                two_way_replacement_selection::extsort::SortError::SinkClosed(
                    "injected sink failure".into(),
                ),
            );
        }
        self.accepted += 1;
        Ok(())
    }
}

fn multi_run_input() -> impl Iterator<Item = Record> {
    // Small memory budget against 8k records guarantees many runs, so the
    // stream actually owns on-device spill files while suspended.
    Distribution::new(DistributionKind::RandomUniform, 8_000, 31).records()
}

#[test]
fn dropping_a_half_consumed_stream_removes_all_device_files() {
    for threads in [1, 4] {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut stream = SortJob::new(ReplacementSelection::new(100))
            .on(&device)
            .threads(threads)
            .stream_iter(multi_run_input())
            .expect("sort runs");
        // The suspended merge really is backed by files on the device.
        assert!(
            !device.list().is_empty(),
            "threads {threads}: a multi-run sort keeps spill files while suspended"
        );
        // Consume a prefix only, then abandon the stream.
        for _ in 0..100 {
            stream
                .next()
                .expect("stream has records")
                .expect("no error");
        }
        drop(stream);
        assert_eq!(
            device.list(),
            Vec::<String>::new(),
            "threads {threads}: early drop must remove every remaining file"
        );
    }
}

#[test]
fn closing_a_stream_early_reports_cleanup_success() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let mut stream = SortJob::new(LoadSortStore::new(100))
        .on(&device)
        .stream_iter(multi_run_input())
        .expect("sort runs");
    stream
        .next()
        .expect("stream has records")
        .expect("no error");
    stream.close().expect("cleanup succeeds");
    assert_eq!(device.list(), Vec::<String>::new());
}

#[test]
fn a_failing_sink_write_removes_all_device_files() {
    for threads in [1, 4] {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut sink = FailingSink {
            accepted: 0,
            limit: 50,
        };
        let result = SortJob::new(ReplacementSelection::new(100))
            .on(&device)
            .threads(threads)
            .sink_iter(multi_run_input(), &mut sink);
        assert!(
            matches!(
                result,
                Err(two_way_replacement_selection::extsort::SortError::SinkClosed(_))
            ),
            "threads {threads}: the injected failure surfaces"
        );
        assert_eq!(sink.accepted, 50);
        assert_eq!(
            device.list(),
            Vec::<String>::new(),
            "threads {threads}: a failed sink drain must remove every spill file"
        );
    }
}

#[test]
fn a_receiver_hangup_mid_drain_aborts_promptly_and_cleans_up() {
    // Regression: a `ChannelSink` whose receiver drops mid-drain must
    // surface `SinkClosed` promptly — including on the parallel path,
    // where the final merge is fed by background prefetch threads that
    // must be torn down, not waited on — and leave no spill files behind.
    for threads in [1, 4] {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let (tx, rx) = std::sync::mpsc::sync_channel::<Record>(8);
        let consumer = std::thread::spawn(move || {
            // Take k records, then hang up with the merge still producing.
            let mut taken = 0u64;
            for _record in rx.iter().take(200) {
                taken += 1;
            }
            taken
        });
        let mut sink = ChannelSink::new(tx);
        let started = std::time::Instant::now();
        let result = SortJob::new(ReplacementSelection::new(100))
            .on(&device)
            .threads(threads)
            .sink_iter(multi_run_input(), &mut sink);
        assert!(
            matches!(
                result,
                Err(two_way_replacement_selection::extsort::SortError::SinkClosed(_))
            ),
            "threads {threads}: the hangup surfaces as SinkClosed, got {result:?}"
        );
        assert_eq!(consumer.join().unwrap(), 200);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "threads {threads}: the abort must be prompt, not a stuck merge"
        );
        assert_eq!(
            device.list(),
            Vec::<String>::new(),
            "threads {threads}: a hung-up drain must remove every spill file"
        );
    }
}

#[test]
fn a_stream_over_a_truncated_dataset_cleans_up_and_errors() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let dist = Distribution::new(DistributionKind::RandomUniform, 3_000, 5);
    two_way_replacement_selection::workloads::materialize(&device, "input", dist.records())
        .unwrap();
    // Truncate the dataset below what its header claims.
    let pages = device.open("input").unwrap().num_pages();
    let mut truncated = Vec::new();
    {
        let mut file = device.open("input").unwrap();
        let mut page = vec![0u8; device.page_size()];
        for index in 0..pages.saturating_sub(2) {
            file.read_page(index, &mut page).unwrap();
            truncated.push(page.clone());
        }
    }
    device.remove("input").unwrap();
    let mut file = device.create("input").unwrap();
    for (index, page) in truncated.iter().enumerate() {
        file.write_page(index as u64, page).unwrap();
    }
    file.flush().unwrap();

    let result = SortJob::new(ReplacementSelection::new(100))
        .on(&device)
        .stream_file("input");
    assert!(result.is_err(), "the truncated read must surface");
    assert_eq!(
        device.list(),
        vec!["input".to_string()],
        "only the caller's dataset survives a failed stream_file"
    );
}
