//! Helpers shared by the facade integration suites.

use two_way_replacement_selection::prelude::*;

/// Every page of `name` on `device`, so comparisons cover the exact bytes
/// (headers, payloads and trailing-page padding included).
pub fn file_bytes(device: &SimDevice, name: &str) -> Vec<u8> {
    let mut file = device.open(name).expect("output exists");
    let mut bytes = Vec::new();
    let mut page = vec![0u8; device.page_size()];
    for index in 0..file.num_pages() {
        file.read_page(index, &mut page).expect("page readable");
        bytes.extend_from_slice(&page);
    }
    bytes
}
