//! Sort-service acceptance: many concurrent jobs from multiple tenants,
//! under a global memory budget smaller than the sum of the budgets the
//! jobs ask for, must (a) produce byte-identical output to the same jobs
//! run one at a time, and (b) keep the arbiter invariant
//! `sum(leases) <= global` at every rebalance point.

use proptest::prelude::*;
use std::time::Duration;
use two_way_replacement_selection::prelude::*;

fn read_run(device: &SimDevice, name: &str) -> Vec<Record> {
    RunCursor::<Record>::open(device, &RunHandle::Forward(name.into()))
        .unwrap()
        .read_all()
        .unwrap()
}

/// Submits arrival `index` of a trace, cycling the three generator
/// families so contention covers RS, LSS and 2WRS alike.
fn submit_arrival(
    service: &SortService,
    device: &SimDevice,
    arrival: &JobArrival,
    index: usize,
    output: String,
) -> JobHandle {
    let input =
        Distribution::new(arrival.distribution, arrival.records as u64, arrival.seed).records();
    match index % 3 {
        0 => service.submit(
            arrival.tenant.clone(),
            SortJob::new(ReplacementSelection::new(arrival.memory_records)).on(device),
            input,
            output,
        ),
        1 => service.submit(
            arrival.tenant.clone(),
            SortJob::new(LoadSortStore::new(arrival.memory_records)).on(device),
            input,
            output,
        ),
        _ => service.submit(
            arrival.tenant.clone(),
            SortJob::new(TwoWayReplacementSelection::new(TwrsConfig::recommended(
                arrival.memory_records,
            )))
            .on(device),
            input,
            output,
        ),
    }
    .unwrap()
}

/// Runs arrival `index` solo — fresh device, full requested budget, same
/// generator family as [`submit_arrival`] — and returns the sorted output.
fn solo_run(arrival: &JobArrival, index: usize) -> Vec<Record> {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let input =
        Distribution::new(arrival.distribution, arrival.records as u64, arrival.seed).records();
    match index % 3 {
        0 => SortJob::new(ReplacementSelection::new(arrival.memory_records))
            .on(&device)
            .run_iter(input, "solo"),
        1 => SortJob::new(LoadSortStore::new(arrival.memory_records))
            .on(&device)
            .run_iter(input, "solo"),
        _ => SortJob::new(TwoWayReplacementSelection::new(TwrsConfig::recommended(
            arrival.memory_records,
        )))
        .on(&device)
        .run_iter(input, "solo"),
    }
    .unwrap();
    read_run(&device, "solo")
}

/// The headline contention scenario of the service: nine jobs from two
/// tenants each request 120 records of memory (1 080 total) against a
/// global budget of 250, with three jobs in flight at once.
#[test]
fn contended_service_jobs_match_solo_runs() {
    let trace = ArrivalTrace::synthetic(2, 9, 1_500, 120, Duration::ZERO, 0xC0FFEE);
    let global = 250;
    assert!(
        global < trace.jobs().iter().map(|j| j.memory_records).sum::<usize>(),
        "the scenario must actually contend for memory"
    );
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let service = SortService::new(ServiceConfig::new(global).workers(3)).unwrap();
    let handles: Vec<JobHandle> = trace
        .jobs()
        .iter()
        .enumerate()
        .map(|(i, arrival)| submit_arrival(&service, &device, arrival, i, format!("svc-{i}")))
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let arrival = &trace.jobs()[i];
        assert_eq!(handle.tenant(), arrival.tenant);
        let done = handle.wait().unwrap();
        assert_eq!(done.report.report.records, arrival.records as u64);
        assert!(
            done.granted_memory >= 1 && done.granted_memory <= arrival.memory_records,
            "job {i}: grant {} outside 1..={}",
            done.granted_memory,
            arrival.memory_records
        );
        // Byte-identical to the same job run alone with its full budget:
        // the sorted output is a pure function of the input, never of the
        // memory the arbiter happened to grant.
        assert_eq!(
            read_run(&device, &format!("svc-{i}")),
            solo_run(arrival, i),
            "service job {i} diverged from its solo run"
        );
    }
    let report = service.shutdown();
    assert_eq!(report.jobs_completed, 9);
    assert_eq!(report.jobs_failed, 0);
    assert_eq!(report.jobs_canceled, 0);
    // The invariant holds at every rebalance point, not just at the end.
    assert_eq!(report.global_memory_records, global);
    assert!(report.max_leased <= global);
    assert_eq!(
        report.rebalances.len(),
        18,
        "one lease + one release per job"
    );
    for event in &report.rebalances {
        assert!(
            event.leased_after <= global,
            "rebalance violated the budget: {event:?}"
        );
    }
    // Queue and sort latency percentiles are populated and ordered.
    assert!(report.queue_latency.p50 <= report.queue_latency.p99);
    assert!(report.queue_latency.p99 <= report.queue_latency.max);
    assert!(report.sort_latency.p50 <= report.sort_latency.p99);
    assert!(report.sort_latency.max > Duration::ZERO);
    // Both tenants are reported, with their jobs and I/O rolled up.
    assert_eq!(report.tenants.len(), 2);
    let jobs: Vec<usize> = report.tenants.iter().map(|t| t.jobs).collect();
    assert_eq!(jobs.iter().sum::<usize>(), 9);
    for tenant in &report.tenants {
        assert_eq!(tenant.records, tenant.jobs as u64 * 1_500);
        assert!(tenant.io.unwrap().counters.pages_written > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary arrival orders, budgets and worker counts: every job
    /// completes, every grant fits its request, and `sum(leases)` never
    /// exceeds the global budget at any rebalance in the audit trail.
    #[test]
    fn leases_never_exceed_the_global_budget(
        budgets in prop::collection::vec(1usize..200, 1..8),
        global in 40usize..300,
        workers in 1usize..4,
    ) {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let service = SortService::new(ServiceConfig::new(global).workers(workers)).unwrap();
        let handles: Vec<JobHandle> = budgets
            .iter()
            .enumerate()
            .map(|(i, &budget)| {
                let input =
                    Distribution::new(DistributionKind::RandomUniform, 400, i as u64).records();
                let job = SortJob::new(ReplacementSelection::new(budget)).on(&device);
                service
                    .submit(format!("tenant-{}", i % 2), job, input, format!("out-{i}"))
                    .unwrap()
            })
            .collect();
        for (handle, &budget) in handles.into_iter().zip(&budgets) {
            let done = handle.wait().unwrap();
            prop_assert_eq!(done.report.report.records, 400);
            prop_assert!(done.granted_memory >= 1);
            prop_assert!(done.granted_memory <= budget.min(global));
        }
        let report = service.shutdown();
        prop_assert_eq!(report.jobs_completed, budgets.len());
        prop_assert!(report.max_leased <= global);
        prop_assert_eq!(report.rebalances.len(), 2 * budgets.len());
        for event in &report.rebalances {
            prop_assert!(
                event.leased_after <= global,
                "rebalance violated the budget: {:?}",
                event
            );
        }
    }
}
