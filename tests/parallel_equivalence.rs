//! Equivalence suite for the parallel external sorter.
//!
//! The single-threaded [`ExternalSorter`] is the reference implementation;
//! [`ParallelExternalSorter`] must be an *observably identical* drop-in for
//! every input shape and thread count. For all six paper distributions and
//! thread counts {1, 2, 4, 7} this suite pins that:
//!
//! * the sorted output file is **byte-identical** (page-for-page) to the
//!   sequential sorter's output on the same seed;
//! * the record counts match, and the parallel run-set totals are
//!   internally consistent (shard records and run counts sum to the
//!   aggregated totals);
//! * the aggregated run-generation I/O counters equal the field-wise sum of
//!   the per-shard counters, and the page counters also reconcile with what
//!   the shared device actually observed (no silently dropped accounting).
//!
//! Degenerate inputs — empty, a single record, fewer records than shards —
//! get the same treatment.

use two_way_replacement_selection::extsort::{
    ParallelExternalSorter, ParallelSortReport, ParallelSorterConfig, ShardableGenerator,
};
use two_way_replacement_selection::prelude::*;
use two_way_replacement_selection::storage::IoStatsSnapshot;

const SEED: u64 = 41;
const MEMORY: usize = 300;
const RECORDS: u64 = 6_000;
const THREADS: [usize; 4] = [1, 2, 4, 7];

fn merge_config() -> MergeConfig {
    MergeConfig {
        fan_in: 6,
        read_ahead_records: 128,
    }
}

fn parallel_config(threads: usize) -> ParallelSorterConfig {
    ParallelSorterConfig {
        threads,
        merge: merge_config(),
        verify: true,
        spill_queue_pages: 32,
        prefetch_batches: 2,
        shard_batch_records: 128,
    }
}

/// Every page of `name` on `device`, so comparisons cover the exact bytes
/// (headers, payloads and trailing-page padding included).
fn file_bytes(device: &SimDevice, name: &str) -> Vec<u8> {
    let mut file = device.open(name).expect("output exists");
    let mut bytes = Vec::new();
    let mut page = vec![0u8; device.page_size()];
    for index in 0..file.num_pages() {
        file.read_page(index, &mut page).expect("page readable");
        bytes.extend_from_slice(&page);
    }
    bytes
}

/// Sorts `kind` sequentially on a fresh device; returns the output bytes
/// and the report.
fn sort_sequential<G: RunGenerator>(
    generator: G,
    kind: DistributionKind,
    records: u64,
) -> (Vec<u8>, SortReport) {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let mut sorter = ExternalSorter::with_config(
        generator,
        SorterConfig {
            merge: merge_config(),
            verify: true,
        },
    );
    let mut input = Distribution::new(kind, records, SEED).records();
    let report = sorter
        .sort_iter(&device, &mut input, "out")
        .expect("sequential sort succeeds");
    (file_bytes(&device, "out"), report)
}

/// Sorts `kind` with the parallel sorter on a fresh device; returns the
/// output bytes, the report and the device-level total page counters so
/// accounting can be reconciled externally.
fn sort_parallel<G: ShardableGenerator>(
    generator: G,
    kind: DistributionKind,
    records: u64,
    threads: usize,
) -> (Vec<u8>, ParallelSortReport, IoStatsSnapshot) {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let mut sorter = ParallelExternalSorter::with_config(generator, parallel_config(threads));
    let mut input = Distribution::new(kind, records, SEED).records();
    let report = sorter
        .sort_iter(&device, &mut input, "out")
        .expect("parallel sort succeeds");
    // Snapshot the device before reading the output back, so the totals
    // cover exactly the sort's own traffic.
    let totals = device.stats();
    (file_bytes(&device, "out"), report, totals)
}

/// The invariants every parallel report must satisfy, against its
/// sequential reference.
fn assert_equivalent(
    label: &str,
    threads: usize,
    seq_bytes: &[u8],
    seq: &SortReport,
    par_bytes: &[u8],
    par: &ParallelSortReport,
    device_totals: &IoStatsSnapshot,
) {
    let context = format!("{label}, {threads} thread(s)");
    // Output stream: byte-identical, not merely equal as a record multiset.
    assert_eq!(par_bytes, seq_bytes, "output bytes differ ({context})");
    assert_eq!(par.report.records, seq.records, "record count ({context})");
    assert_eq!(par.threads, threads, "thread count echoed ({context})");
    assert_eq!(
        par.shards.len(),
        threads,
        "one report per shard ({context})"
    );

    // Run-set totals: shard sums equal the aggregated totals.
    let shard_records: u64 = par.shards.iter().map(|s| s.records).sum();
    let shard_runs: usize = par.shards.iter().map(|s| s.num_runs).sum();
    assert_eq!(
        shard_records, par.report.records,
        "shard records ({context})"
    );
    assert_eq!(
        shard_runs, par.report.num_runs,
        "shard run counts ({context})"
    );

    // I/O accounting: aggregated counters are the shard sums…
    assert!(par.io_is_consistent(), "io consistency ({context})");
    let sum = par.shard_io_sum();
    assert_eq!(
        sum.counters.pages_written, par.report.run_generation.pages_written,
        "aggregated generation writes ({context})"
    );
    // …and nothing was dropped: generation + merge + verify page traffic
    // accounts for everything the shared device saw.
    let accounted_written = par.report.run_generation.pages_written
        + par.report.merge.pages_written
        + par.report.verify.map_or(0, |v| v.pages_written);
    let accounted_read = par.report.run_generation.pages_read
        + par.report.merge.pages_read
        + par.report.verify.map_or(0, |v| v.pages_read);
    assert_eq!(
        accounted_written, device_totals.counters.pages_written,
        "pages written reconcile with the device ({context})"
    );
    assert_eq!(
        accounted_read, device_totals.counters.pages_read,
        "pages read reconcile with the device ({context})"
    );

    // One shard is the sequential algorithm with the full budget: its run
    // set must match the reference exactly.
    if threads == 1 {
        assert_eq!(par.report.num_runs, seq.num_runs, "run count ({context})");
    }
}

fn equivalence_for_generator<G, F>(make: F)
where
    G: ShardableGenerator,
    F: Fn() -> G,
{
    for kind in DistributionKind::paper_set() {
        let (seq_bytes, seq) = sort_sequential(make(), kind, RECORDS);
        for threads in THREADS {
            let (par_bytes, par, totals) = sort_parallel(make(), kind, RECORDS, threads);
            assert_equivalent(
                kind.label(),
                threads,
                &seq_bytes,
                &seq,
                &par_bytes,
                &par,
                &totals,
            );
        }
    }
}

#[test]
fn twrs_parallel_output_is_byte_identical_across_distributions_and_threads() {
    equivalence_for_generator(|| TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)));
}

#[test]
fn classic_rs_parallel_output_is_byte_identical_across_distributions_and_threads() {
    equivalence_for_generator(|| ReplacementSelection::new(MEMORY));
}

#[test]
fn lss_parallel_output_is_byte_identical_across_distributions_and_threads() {
    equivalence_for_generator(|| LoadSortStore::new(MEMORY));
}

#[test]
fn empty_input_is_equivalent_for_every_thread_count() {
    let (seq_bytes, seq) = sort_sequential(
        TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
        DistributionKind::RandomUniform,
        0,
    );
    for threads in THREADS {
        let (par_bytes, par, totals) = sort_parallel(
            TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
            DistributionKind::RandomUniform,
            0,
            threads,
        );
        assert_equivalent(
            "empty", threads, &seq_bytes, &seq, &par_bytes, &par, &totals,
        );
        assert_eq!(par.report.records, 0);
        assert_eq!(par.report.num_runs, 0);
    }
}

#[test]
fn single_record_is_equivalent_for_every_thread_count() {
    let (seq_bytes, seq) = sort_sequential(
        TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
        DistributionKind::Sorted,
        1,
    );
    for threads in THREADS {
        let (par_bytes, par, totals) = sort_parallel(
            TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
            DistributionKind::Sorted,
            1,
            threads,
        );
        assert_equivalent(
            "one record",
            threads,
            &seq_bytes,
            &seq,
            &par_bytes,
            &par,
            &totals,
        );
        assert_eq!(par.report.records, 1);
    }
}

#[test]
fn input_smaller_than_one_shard_is_equivalent() {
    // Seven threads, five records: some shards see no input at all, and no
    // shard fills even one round-robin parcel.
    for records in [2u64, 5] {
        let (seq_bytes, seq) = sort_sequential(
            TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
            DistributionKind::ReverseSorted,
            records,
        );
        let (par_bytes, par, totals) = sort_parallel(
            TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
            DistributionKind::ReverseSorted,
            records,
            7,
        );
        assert_equivalent("tiny input", 7, &seq_bytes, &seq, &par_bytes, &par, &totals);
        assert_eq!(par.report.records, records);
    }
}

#[test]
fn sort_file_attributes_input_reads_to_run_generation() {
    // When the input is a materialised dataset, the coordinator reads it
    // from the same device the shards spill to. Those reads belong to the
    // run-generation phase (the sequential sorter attributes them there via
    // its device-level delta) and must not be dropped from the accounting.
    use two_way_replacement_selection::workloads::materialize;

    let kind = DistributionKind::RandomUniform;
    let records = RECORDS;

    // Sequential reference via sort_file.
    let seq_device = SimDevice::with_model(ModelId::Hdd7200);
    materialize(
        &seq_device,
        "input",
        Distribution::new(kind, records, SEED).records(),
    )
    .expect("materialize input");
    let mut seq_sorter = ExternalSorter::with_config(
        TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
        SorterConfig {
            merge: merge_config(),
            verify: true,
        },
    );
    let seq = seq_sorter
        .sort_file(&seq_device, "input", "out")
        .expect("sequential sort_file succeeds");

    for threads in THREADS {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        materialize(
            &device,
            "input",
            Distribution::new(kind, records, SEED).records(),
        )
        .expect("materialize input");
        let before = device.stats();
        let mut sorter = ParallelExternalSorter::with_config(
            TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
            parallel_config(threads),
        );
        let par = sorter
            .sort_file(&device, "input", "out")
            .expect("parallel sort_file succeeds");
        let after = device.stats();

        assert_eq!(
            file_bytes(&device, "out"),
            file_bytes(&seq_device, "out"),
            "byte-identical output ({threads} threads)"
        );
        assert!(par.io_is_consistent(), "{threads} threads");

        // Input reads are attributed to run generation, like the
        // sequential sorter — not dropped.
        assert!(
            par.report.run_generation.pages_read > par.shard_io_sum().counters.pages_read,
            "input reads show up in the phase ({threads} threads)"
        );
        // With a single shard the generator is the sequential algorithm
        // with the full budget, so the phase reads match exactly; with
        // more shards the generators' own reads (2WRS reverse part files)
        // may differ slightly, but never below the input scan itself.
        if threads == 1 {
            assert_eq!(
                par.report.run_generation.pages_read, seq.run_generation.pages_read,
                "same generation reads as the sequential sorter (1 thread)"
            );
        }

        // Every page the device saw during the sort is attributed to
        // exactly one phase — except the input file's header page, which
        // `sort_file` reads when opening the dataset, before any phase
        // window starts (the sequential sorter behaves identically).
        let sorted_delta = after.since(&before);
        let accounted_read = par.report.run_generation.pages_read
            + par.report.merge.pages_read
            + par.report.verify.map_or(0, |v| v.pages_read);
        let accounted_written = par.report.run_generation.pages_written
            + par.report.merge.pages_written
            + par.report.verify.map_or(0, |v| v.pages_written);
        let header_read = 1;
        assert_eq!(
            accounted_read + header_read,
            sorted_delta.counters.pages_read
        );
        assert_eq!(accounted_written, sorted_delta.counters.pages_written);
    }
}

// Note: conservation of the total memory budget across shard splits is
// covered at the unit level (`twrs_core::config` tests assert the sum, the
// per-shard minimum and the seed offsets; `twrs_extsort::parallel` tests
// pin `shard_budget` itself), so this suite does not repeat it.
