//! Stream/file equivalence: `stream_iter` must yield exactly the record
//! sequence `run_iter` writes to its output file — byte-identical once
//! re-encoded — for every generator and thread count, while performing zero
//! final-output page writes.

mod common;

use common::file_bytes;
use proptest::prelude::*;
use two_way_replacement_selection::prelude::*;
use two_way_replacement_selection::storage::RunWriter;

/// Runs `run_iter` and `stream_iter` on separate fresh devices for the same
/// input, re-encodes the streamed records through a `RunWriter`, and
/// compares the exact file bytes (headers, payloads, padding).
fn assert_stream_matches_file<G>(make: impl Fn() -> G, threads: usize, label: &str)
where
    G: ShardableGenerator,
{
    let input = || Distribution::new(DistributionKind::MixedBalanced, 6_000, 17).records();

    let file_device = SimDevice::with_model(ModelId::Hdd7200);
    let file_report = SortJob::new(make())
        .on(&file_device)
        .threads(threads)
        .run_iter(input(), "out")
        .expect("file sort runs");
    assert_eq!(file_report.final_pass, FinalPassKind::File);
    assert!(
        file_report.final_pass_pages_written() > 0,
        "{label}: the file path pays a final write pass"
    );

    let stream_device = SimDevice::with_model(ModelId::Hdd7200);
    let stream = SortJob::new(make())
        .on(&stream_device)
        .threads(threads)
        .stream_iter(input())
        .expect("stream sort runs");
    let report = stream.report().clone();
    assert_eq!(report.final_pass, FinalPassKind::Streamed);
    assert_eq!(
        report.final_pass_pages_written(),
        0,
        "{label}: a stream never writes final-pass pages"
    );
    assert_eq!(report.threads, threads);
    assert_eq!(stream.expected_records(), 6_000);
    assert!(report.io_is_consistent(), "{label}: shard accounting");

    let records: Vec<Record> = stream
        .collect::<Result<_, _>>()
        .expect("stream yields no errors");
    assert_eq!(records.len(), 6_000, "{label}");
    // A fully drained stream has already removed its spill files.
    assert_eq!(
        stream_device.list(),
        Vec::<String>::new(),
        "{label}: drained stream leaves the device clean"
    );

    let mut writer = RunWriter::<Record>::create(&stream_device, "reencoded").unwrap();
    for record in &records {
        writer.push(record).unwrap();
    }
    writer.finish().unwrap();
    assert_eq!(
        file_bytes(&file_device, "out"),
        file_bytes(&stream_device, "reencoded"),
        "{label}: stream output is byte-identical to the run_iter file"
    );
}

#[test]
fn stream_matches_file_for_every_generator_and_thread_count() {
    for threads in [1, 4] {
        assert_stream_matches_file(
            || ReplacementSelection::new(200),
            threads,
            &format!("RS t{threads}"),
        );
        assert_stream_matches_file(
            || LoadSortStore::new(200),
            threads,
            &format!("LSS t{threads}"),
        );
        assert_stream_matches_file(
            || TwoWayReplacementSelection::new(TwrsConfig::recommended(200)),
            threads,
            &format!("2WRS t{threads}"),
        );
    }
}

#[test]
fn empty_input_streams_nothing_and_leaves_no_files() {
    for threads in [1, 4] {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let stream = SortJob::new(ReplacementSelection::new(64))
            .on(&device)
            .threads(threads)
            .stream_iter(std::iter::empty::<Record>())
            .expect("empty sort runs");
        assert_eq!(stream.expected_records(), 0);
        assert_eq!(stream.count(), 0);
        assert_eq!(device.list(), Vec::<String>::new(), "threads {threads}");
    }
}

#[test]
fn single_record_round_trips_through_the_stream() {
    for threads in [1, 4] {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let stream = SortJob::new(LoadSortStore::new(64))
            .on(&device)
            .threads(threads)
            .stream_iter(std::iter::once(Record::new(42, 7)))
            .expect("sort runs");
        let records: Vec<Record> = stream.collect::<Result<_, _>>().unwrap();
        assert_eq!(records, vec![Record::new(42, 7)]);
        assert_eq!(device.list(), Vec::<String>::new(), "threads {threads}");
    }
}

#[test]
fn stream_file_matches_run_file_on_a_materialised_dataset() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let dist = Distribution::new(DistributionKind::ReverseSorted, 4_000, 9);
    two_way_replacement_selection::workloads::materialize(&device, "input", dist.records())
        .unwrap();

    let file_report = SortJob::new(ReplacementSelection::new(150))
        .on(&device)
        .run_file("input", "out")
        .expect("run_file sorts");
    assert_eq!(file_report.report.records, 4_000);

    let stream = SortJob::new(ReplacementSelection::new(150))
        .on(&device)
        .stream_file("input")
        .expect("stream_file sorts");
    let streamed: Vec<Record> = stream.collect::<Result<_, _>>().unwrap();
    let filed = RecordRunCursor::open(&device, &RunHandle::Forward("out".into()))
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(streamed, filed);
    // Only the dataset and run_file's output remain — no stream leftovers.
    assert_eq!(device.list(), vec!["input".to_string(), "out".to_string()]);
}

#[test]
fn sink_iter_delivers_the_same_sequence_with_zero_device_writes() {
    for threads in [1, 4] {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let input = Distribution::new(DistributionKind::RandomUniform, 5_000, 23);
        let mut sink = VecSink::new();
        let report = SortJob::new(ReplacementSelection::new(150))
            .on(&device)
            .threads(threads)
            .sink_iter(input.records(), &mut sink)
            .expect("sink sort runs");
        assert_eq!(report.final_pass, FinalPassKind::Sink);
        assert_eq!(
            report.final_pass_pages_written(),
            0,
            "an in-memory sink writes no device pages in the final pass"
        );
        assert_eq!(report.report.records, 5_000);
        let collected = sink.into_vec();
        assert_eq!(collected.len(), 5_000);
        assert!(collected.windows(2).all(|w| w[0] <= w[1]));

        let mut expected: Vec<Record> = input.records().collect();
        expected.sort_unstable();
        assert_eq!(collected, expected, "threads {threads}");
        assert_eq!(device.list(), Vec::<String>::new(), "threads {threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The stream equals a `std` sort of the same input for arbitrary key
    /// multisets, memory budgets and thread counts.
    #[test]
    fn stream_matches_std_sort(
        keys in prop::collection::vec(0u64..100_000, 0..1_200),
        memory in 8usize..200,
        threads in 1usize..5,
    ) {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let input: Vec<Record> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Record::new(*k, i as u64))
            .collect();
        let stream = SortJob::new(ReplacementSelection::new(memory))
            .on(&device)
            .threads(threads)
            .stream_iter(input.clone().into_iter())
            .unwrap();
        prop_assert_eq!(stream.expected_records() as usize, input.len());
        let streamed: Vec<Record> = stream.collect::<Result<_, _>>().unwrap();
        let mut expected = input;
        expected.sort_unstable();
        prop_assert_eq!(streamed, expected);
        prop_assert_eq!(device.list(), Vec::<String>::new());
    }
}
