//! End-to-end integration tests across the workspace: full sorts on both
//! device backends, every run-generation algorithm, and the merge
//! strategies, all verified for correctness.

use two_way_replacement_selection::extsort::distribution_sort::{
    DistributionSort, DistributionSortConfig,
};
use two_way_replacement_selection::extsort::polyphase_merge;
use two_way_replacement_selection::extsort::sorter::verify_sorted;
use two_way_replacement_selection::prelude::*;
use two_way_replacement_selection::workloads::{materialize, read_dataset};

fn full_sort_and_verify<G: RunGenerator, D: StorageDevice + Clone + Send + 'static>(
    device: &D,
    generator: G,
    kind: DistributionKind,
    records: u64,
) {
    let mut sorter = ExternalSorter::with_config(
        generator,
        SorterConfig {
            merge: MergeConfig {
                fan_in: 6,
                read_ahead_records: 256,
            },
            verify: true,
        },
    );
    let mut input = Distribution::new(kind, records, 17).records();
    let report = sorter
        .sort_iter(device, &mut input, "sorted")
        .expect("sort succeeds");
    assert_eq!(report.records, records);
    verify_sorted::<Record>(device, "sorted", records).expect("output verified");
    device.remove("sorted").expect("cleanup");
}

#[test]
fn every_generator_sorts_every_distribution_on_the_simulated_device() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    for kind in DistributionKind::paper_set() {
        full_sort_and_verify(&device, LoadSortStore::new(200), kind, 5_000);
        full_sort_and_verify(&device, ReplacementSelection::new(200), kind, 5_000);
        full_sort_and_verify(
            &device,
            TwoWayReplacementSelection::new(TwrsConfig::recommended(200)),
            kind,
            5_000,
        );
    }
}

#[test]
fn twrs_sorts_on_the_real_file_device() {
    let device = FileDevice::temp().expect("temporary directory");
    full_sort_and_verify(
        &device,
        TwoWayReplacementSelection::new(TwrsConfig::recommended(300)),
        DistributionKind::MixedBalanced,
        8_000,
    );
}

#[test]
fn materialised_datasets_round_trip_and_sort() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let dist = Distribution::new(DistributionKind::MixedBalanced, 10_000, 3);
    let expected: Vec<Record> = dist.collect();
    materialize(&device, "table", expected.iter().copied()).expect("materialise");
    let mut reader = read_dataset(&device, "table").expect("open dataset");
    assert_eq!(reader.read_all().expect("read dataset"), expected);

    let report = SortJob::new(TwoWayReplacementSelection::new(TwrsConfig::recommended(
        250,
    )))
    .on(&device)
    .run_file("table", "table_sorted")
    .expect("sort succeeds");
    assert_eq!(report.report.records, 10_000);

    let mut sorted = expected;
    sorted.sort_unstable();
    let mut cursor = RecordRunCursor::open(&device, &RunHandle::Forward("table_sorted".into()))
        .expect("open output");
    assert_eq!(cursor.read_all().expect("read output"), sorted);
}

#[test]
fn polyphase_merge_agrees_with_kway_merge() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let namer = SpillNamer::new("poly-vs-kway");
    let mut generator = LoadSortStore::new(250);
    let input: Vec<Record> = Distribution::new(DistributionKind::RandomUniform, 6_000, 5).collect();
    let mut iter = input.clone().into_iter();
    let set = generator
        .generate(&device, &namer, &mut iter)
        .expect("run generation succeeds");

    // Merge one copy with polyphase and compare against a std sort.
    polyphase_merge::<_, Record>(&device, &namer, set.runs, 4, "poly_out")
        .expect("polyphase succeeds");
    let mut cursor = RecordRunCursor::open(&device, &RunHandle::Forward("poly_out".into()))
        .expect("open output");
    let merged = cursor.read_all().expect("read output");
    let mut expected = input;
    expected.sort_unstable();
    assert_eq!(merged, expected);
}

#[test]
fn distribution_sort_agrees_with_the_merge_pipeline() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let namer = SpillNamer::new("dsort");
    let input: Vec<Record> = Distribution::new(
        DistributionKind::MixedImbalanced {
            descending_per_ascending: 3,
        },
        9_000,
        21,
    )
    .collect();

    let sorter = DistributionSort::new(DistributionSortConfig {
        memory_records: 300,
        buckets: 8,
        max_depth: 6,
    });
    let mut iter = input.clone().into_iter();
    sorter
        .sort(&device, &namer, &mut iter, "bucket_sorted")
        .expect("distribution sort succeeds");

    SortJob::new(TwoWayReplacementSelection::new(TwrsConfig::recommended(
        300,
    )))
    .on(&device)
    .run_iter(input.into_iter(), "merge_sorted")
    .expect("merge sort succeeds");

    let mut a =
        RecordRunCursor::open(&device, &RunHandle::Forward("bucket_sorted".into())).unwrap();
    let mut b = RecordRunCursor::open(&device, &RunHandle::Forward("merge_sorted".into())).unwrap();
    assert_eq!(a.read_all().unwrap(), b.read_all().unwrap());
}

#[test]
fn io_accounting_splits_phases() {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let input = Distribution::new(DistributionKind::RandomUniform, 8_000, 2);
    let report = SortJob::new(TwoWayReplacementSelection::new(TwrsConfig::recommended(
        200,
    )))
    .on(&device)
    .run_iter(input.records(), "out")
    .expect("sort succeeds")
    .report;
    // Run generation writes the runs; the merge reads them back and writes
    // the output: both phases show I/O and the totals are consistent. (Run
    // generation may write slightly more than the merge reads because the
    // reverse-file format pre-allocates its fixed-size part files.)
    assert!(report.run_generation.pages_written > 0);
    assert!(report.merge.pages_read > 0);
    assert!(report.merge.pages_read * 2 >= report.run_generation.pages_written);
    assert!(report.merge.pages_written > 0);
    assert!(report.total_modelled() >= report.run_generation.modelled_total());
}
